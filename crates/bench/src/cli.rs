//! Minimal flag parsing for the experiment binaries (`--key value` pairs).

use std::collections::HashMap;

/// Parsed `--key value` flags.
///
/// # Example
///
/// ```
/// use liteworp_bench::cli::Flags;
///
/// let f = Flags::parse(["--seeds", "30", "--duration", "2000"]);
/// assert_eq!(f.get_u64("seeds", 10), 30);
/// assert_eq!(f.get_f64("duration", 500.0), 2000.0);
/// assert_eq!(f.get_u64("nodes", 100), 100); // default
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments.
    ///
    /// # Panics
    ///
    /// Panics on a flag without a value or a bare positional argument, so
    /// typos fail loudly rather than silently running the default.
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = HashMap::new();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {arg:?}"))
                .to_string();
            let value = it
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            values.insert(key, value);
        }
        Flags { values }
    }

    /// Integer flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// Float flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// `usize` flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_parsed(key).unwrap_or(default)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.values.get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("flag --{key}: cannot parse {v:?}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let f = Flags::parse(["--a", "1"]);
        assert_eq!(f.get_u64("a", 9), 1);
        assert_eq!(f.get_u64("b", 9), 9);
        assert_eq!(f.get_usize("a", 0), 1);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        Flags::parse(["--a"]);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn positional_panics() {
        Flags::parse(["oops"]);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_number_panics() {
        Flags::parse(["--a", "zzz"]).get_u64("a", 0);
    }
}
