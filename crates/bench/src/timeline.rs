//! Human-readable chronology of a run: when the attack began, when each
//! guard blew the whistle, when every neighborhood closed ranks, and when
//! the damage stopped growing.

use crate::scenario::ScenarioRun;
use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::NodeId as SimId;

/// One line of the chronology.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Event time in seconds.
    pub time: f64,
    /// What happened.
    pub description: String,
}

/// Builds the chronology of a finished run.
///
/// Includes the attack start, each node's first suspicion / isolation
/// event about each colluder (condensed: first and γ-th), per-colluder
/// full-isolation instants, and route-establishment milestones.
pub fn timeline(run: &ScenarioRun) -> Vec<TimelineEntry> {
    let mut out = Vec::new();
    let attack = run.attack_start().as_secs_f64();
    out.push(TimelineEntry {
        time: attack,
        description: format!("attack starts (colluders: {:?})", run.malicious()),
    });

    let malicious: Vec<u64> = run.malicious().iter().map(|m| m.0 as u64).collect();

    // First suspicion and first isolation per suspect.
    for &m in run.malicious() {
        let first_susp = run
            .sim()
            .trace()
            .with_tag("suspected")
            .find(|e| e.value == m.0 as u64);
        if let Some(e) = first_susp {
            out.push(TimelineEntry {
                time: e.time.as_secs_f64(),
                description: format!("{} first suspected (by {})", m, e.node),
            });
        }
        let first_iso = run
            .sim()
            .trace()
            .with_tag("isolated")
            .find(|e| e.value == m.0 as u64);
        if let Some(e) = first_iso {
            out.push(TimelineEntry {
                time: e.time.as_secs_f64(),
                description: format!("{} first isolated (by {})", m, e.node),
            });
        }
        if let Some(t) = run.full_isolation_time(m) {
            out.push(TimelineEntry {
                time: t.as_secs_f64(),
                description: format!(
                    "{} fully isolated by all {} honest neighbors",
                    m,
                    run.honest_neighbors_of(m).len()
                ),
            });
        }
    }

    // Any honest casualties.
    let mut seen_honest = std::collections::BTreeSet::new();
    for e in run.sim().trace().with_tag("isolated") {
        if !malicious.contains(&e.value) && seen_honest.insert(e.value) {
            out.push(TimelineEntry {
                time: e.time.as_secs_f64(),
                description: format!("HONEST node n{} falsely isolated (by {})", e.value, e.node),
            });
        }
    }

    // First wormhole-won route (fake link in the relay telemetry).
    let mut first_bad: Option<(f64, CoreId)> = None;
    for (source, rec) in run.all_routes() {
        let mut path: Vec<CoreId> = rec.relays.clone();
        path.push(source);
        let fake = path
            .windows(2)
            .any(|w| !run.sim().field().in_range(SimId(w[0].0), SimId(w[1].0)));
        if fake {
            let t = rec.time.as_secs_f64();
            if first_bad.is_none_or(|(bt, _)| t < bt) {
                first_bad = Some((t, source));
            }
        }
    }
    if let Some((t, source)) = first_bad {
        out.push(TimelineEntry {
            time: t,
            description: format!("first route through the wormhole (source {source})"),
        });
    }

    out.sort_by(|a, b| a.time.total_cmp(&b.time));
    out
}

/// Renders the chronology as text.
pub fn render(entries: &[TimelineEntry]) -> String {
    let mut s = String::new();
    for e in entries {
        s.push_str(&format!("{:>9.3} s  {}\n", e.time, e.description));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn chronology_is_ordered_and_complete() {
        let mut run = Scenario {
            nodes: 30,
            malicious: 2,
            protected: true,
            seed: 5,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(400.0);
        let tl = timeline(&run);
        assert!(tl.len() >= 3, "chronology too thin: {tl:?}");
        assert!(
            tl.windows(2).all(|w| w[0].time <= w[1].time),
            "entries out of order"
        );
        assert!(tl[0].description.contains("attack starts"));
        let text = render(&tl);
        assert!(text.contains("isolated"), "no isolation recorded:\n{text}");
    }

    #[test]
    fn clean_run_has_only_the_attack_marker() {
        let mut run = Scenario {
            nodes: 20,
            malicious: 0,
            protected: true,
            seed: 6,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(200.0);
        let tl = timeline(&run);
        assert_eq!(tl.len(), 1, "{tl:?}");
    }
}
