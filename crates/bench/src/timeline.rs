//! Human-readable chronology of a run: when the attack began, when each
//! guard blew the whistle, when every neighborhood closed ranks, and when
//! the damage stopped growing.

use crate::scenario::ScenarioRun;
use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::NodeId as SimId;
use liteworp_netsim::prelude::TraceKind;

/// The γ the run's nodes are configured with (0 when unprotected).
fn confidence_index(run: &ScenarioRun) -> usize {
    run.protocol_node(CoreId(0))
        .params()
        .liteworp
        .as_ref()
        .map_or(0, |c| c.confidence_index)
}

/// One line of the chronology.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Event time in seconds.
    pub time: f64,
    /// What happened.
    pub description: String,
}

/// Builds the chronology of a finished run.
///
/// Includes the attack start, each colluder's first suspicion, the γ-th
/// guard alert about it (the alert that confirms isolation under the
/// detection confidence index), its first isolation, per-colluder
/// full-isolation instants, and route-establishment milestones.
pub fn timeline(run: &ScenarioRun) -> Vec<TimelineEntry> {
    let mut out = Vec::new();
    let attack = run.attack_start().as_secs_f64();
    out.push(TimelineEntry {
        time: attack,
        description: format!("attack starts (colluders: {:?})", run.malicious()),
    });

    let malicious: Vec<u32> = run.malicious().iter().map(|m| m.0).collect();
    let gamma = confidence_index(run);

    // First suspicion, γ-th confirming alert, and first isolation per
    // suspect.
    for &m in run.malicious() {
        let first_susp = run
            .sim()
            .trace()
            .suspicions()
            .find(|&(_, _, suspect)| suspect == SimId(m.0));
        if let Some((t, guard, _)) = first_susp {
            out.push(TimelineEntry {
                time: t.as_secs_f64(),
                description: format!("{} first suspected (by {})", m, guard),
            });
        }
        // The γ-th accepted alert at the first guard that isolates by
        // quorum is the alert that tipped the confidence index.
        if let Some(iso) = run
            .sim()
            .trace()
            .isolations()
            .find(|i| i.suspect == SimId(m.0) && i.by_alerts)
        {
            let gamma_th = run
                .sim()
                .trace()
                .events()
                .filter_map(|e| match e.kind {
                    TraceKind::AlertReceived {
                        guard,
                        suspect,
                        accepted: true,
                    } if SimId(e.node) == iso.guard && suspect == m.0 => Some((e.time_us, guard)),
                    _ => None,
                })
                .nth(gamma.saturating_sub(1));
            if let Some((t_us, guard)) = gamma_th {
                out.push(TimelineEntry {
                    time: t_us as f64 / 1e6,
                    description: format!(
                        "{} accused by alert {gamma} of {gamma} (guard {} convinces {}, \
                         confirming isolation)",
                        m,
                        SimId(guard),
                        iso.guard
                    ),
                });
            }
        }
        let first_iso = run
            .sim()
            .trace()
            .isolations()
            .find(|i| i.suspect == SimId(m.0));
        if let Some(iso) = first_iso {
            out.push(TimelineEntry {
                time: iso.time.as_secs_f64(),
                description: format!("{} first isolated (by {})", m, iso.guard),
            });
        }
        if let Some(t) = run.full_isolation_time(m) {
            out.push(TimelineEntry {
                time: t.as_secs_f64(),
                description: format!(
                    "{} fully isolated by all {} honest neighbors",
                    m,
                    run.honest_neighbors_of(m).len()
                ),
            });
        }
    }

    // Any honest casualties.
    let mut seen_honest = std::collections::BTreeSet::new();
    for iso in run.sim().trace().isolations() {
        if !malicious.contains(&iso.suspect.0) && seen_honest.insert(iso.suspect.0) {
            out.push(TimelineEntry {
                time: iso.time.as_secs_f64(),
                description: format!(
                    "HONEST node {} falsely isolated (by {})",
                    iso.suspect, iso.guard
                ),
            });
        }
    }

    // First wormhole-won route (fake link in the relay telemetry).
    let mut first_bad: Option<(f64, CoreId)> = None;
    for (source, rec) in run.all_routes() {
        let mut path: Vec<CoreId> = rec.relays.clone();
        path.push(source);
        let fake = path
            .windows(2)
            .any(|w| !run.sim().field().in_range(SimId(w[0].0), SimId(w[1].0)));
        if fake {
            let t = rec.time.as_secs_f64();
            if first_bad.is_none_or(|(bt, _)| t < bt) {
                first_bad = Some((t, source));
            }
        }
    }
    if let Some((t, source)) = first_bad {
        out.push(TimelineEntry {
            time: t,
            description: format!("first route through the wormhole (source {source})"),
        });
    }

    out.sort_by(|a, b| a.time.total_cmp(&b.time));
    out
}

/// Renders the chronology as text.
pub fn render(entries: &[TimelineEntry]) -> String {
    let mut s = String::new();
    for e in entries {
        s.push_str(&format!("{:>9.3} s  {}\n", e.time, e.description));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn chronology_is_ordered_and_complete() {
        let mut run = Scenario {
            nodes: 30,
            malicious: 2,
            protected: true,
            seed: 5,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(400.0);
        let tl = timeline(&run);
        assert!(tl.len() >= 3, "chronology too thin: {tl:?}");
        assert!(
            tl.windows(2).all(|w| w[0].time <= w[1].time),
            "entries out of order"
        );
        assert!(tl[0].description.contains("attack starts"));
        let text = render(&tl);
        assert!(text.contains("isolated"), "no isolation recorded:\n{text}");
    }

    #[test]
    fn clean_run_has_only_the_attack_marker() {
        let mut run = Scenario {
            nodes: 20,
            malicious: 0,
            protected: true,
            seed: 6,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(200.0);
        let tl = timeline(&run);
        assert_eq!(tl.len(), 1, "{tl:?}");
    }
}
