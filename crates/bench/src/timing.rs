//! Minimal std-only timing harness for the `harness = false` benchmark
//! binaries. The external benchmark framework is not part of the offline
//! dependency graph, so the benches measure with `std::time::Instant`
//! directly: auto-calibrated batch sizes for nanosecond-scale operations,
//! fixed sample counts for whole-simulation runs.

pub use std::hint::black_box;
use std::time::Instant;

/// Benchmark a fast operation: auto-calibrate a batch size that runs for
/// at least ~20 ms, then report the best of five batches in ns/iter.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed().as_secs_f64() / iters as f64;
        if per < best {
            best = per;
        }
    }
    println!("{name:<44} {:>14.1} ns/iter  (x{iters})", best * 1e9);
}

/// Benchmark a slow operation: run it `samples` times and report the
/// mean and minimum wall-clock per run in milliseconds.
pub fn bench_heavy<T>(name: &str, samples: u32, mut f: impl FnMut() -> T) {
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name:<44} mean {mean:>10.1} ms   min {min:>10.1} ms  ({samples} samples)");
}
