//! Minimal std-only timing harness for the `harness = false` benchmark
//! binaries. The external benchmark framework is not part of the offline
//! dependency graph, so the benches measure with `std::time::Instant`
//! directly: auto-calibrated batch sizes for nanosecond-scale operations,
//! fixed sample counts for whole-simulation runs.
//!
//! Besides the human-readable line on stdout, every measurement writes a
//! machine-readable `BENCH_<name>.json` file (for diffing across commits)
//! into `LITEWORP_BENCH_DIR`, defaulting to `results/bench`.

use liteworp_runner::Json;
pub use std::hint::black_box;
use std::time::Instant;

/// Benchmark a fast operation: auto-calibrate a batch size that runs for
/// at least ~20 ms, then report the best of five batches in ns/iter.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let mut iters: u64 = 1;
    loop {
        // lint: allow(D001) this module *is* the wall-clock profiling seam
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if start.elapsed().as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        // lint: allow(D001) this module *is* the wall-clock profiling seam
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = start.elapsed().as_secs_f64() / iters as f64;
        if per < best {
            best = per;
        }
    }
    println!("{name:<44} {:>14.1} ns/iter  (x{iters})", best * 1e9);
    write_record(
        name,
        Json::object([
            ("name", Json::from(name)),
            ("unit", Json::from("ns/iter")),
            ("value", Json::from(best * 1e9)),
            ("iters_per_sample", Json::from(iters)),
            ("samples", Json::from(5u64)),
        ]),
    );
}

/// Benchmark a slow operation: run it `samples` times and report the
/// mean and minimum wall-clock per run in milliseconds.
pub fn bench_heavy<T>(name: &str, samples: u32, mut f: impl FnMut() -> T) {
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        // lint: allow(D001) this module *is* the wall-clock profiling seam
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name:<44} mean {mean:>10.1} ms   min {min:>10.1} ms  ({samples} samples)");
    write_record(
        name,
        Json::object([
            ("name", Json::from(name)),
            ("unit", Json::from("ms")),
            ("value", Json::from(mean)),
            ("min", Json::from(min)),
            ("samples", Json::from(samples as u64)),
        ]),
    );
}

/// The directory benchmark records go to: `LITEWORP_BENCH_DIR` or
/// `results/bench`.
pub fn bench_dir() -> std::path::PathBuf {
    std::env::var_os("LITEWORP_BENCH_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("results/bench"))
}

/// Writes `BENCH_<sanitized name>.json`. Benches are best-effort
/// observability, so I/O failures warn instead of aborting the run.
fn write_record(name: &str, record: Json) {
    let dir = bench_dir();
    let file = dir.join(format!("BENCH_{}.json", sanitize(name)));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        std::fs::write(&file, record.dump() + "\n")
    };
    if let Err(e) = write() {
        eprintln!("warning: cannot write {}: {e}", file.display());
    }
}

/// Maps a free-form bench name to a safe file stem.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_only_alphanumerics() {
        assert_eq!(sanitize("sim: 30 nodes / 100 s"), "sim__30_nodes___100_s");
        assert_eq!(sanitize("hash_frame"), "hash_frame");
    }

    #[test]
    fn bench_record_is_parseable_json() {
        let dir = std::env::temp_dir().join(format!("lw_bench_test_{}", std::process::id()));
        std::env::set_var("LITEWORP_BENCH_DIR", &dir);
        bench_heavy("unit test op", 2, || 1 + 1);
        std::env::remove_var("LITEWORP_BENCH_DIR");
        let path = dir.join("BENCH_unit_test_op.json");
        let text = std::fs::read_to_string(&path).expect("record written");
        let json = Json::parse(&text).expect("valid json");
        assert_eq!(
            json.get("name").and_then(Json::as_str),
            Some("unit test op")
        );
        assert_eq!(json.get("unit").and_then(Json::as_str), Some("ms"));
        assert_eq!(json.get("samples").and_then(Json::as_u64), Some(2));
        assert!(json.get("value").and_then(Json::as_f64).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
