//! Bridges [`Scenario`] to the `liteworp-runner` execution engine.
//!
//! Every multi-seed experiment describes its work as [`SimCell`]s (one
//! scenario configuration × a seed count) and hands them to [`run_cells`],
//! which executes all seeds of all cells on the runner's thread pool with
//! the result cache in front. A cell's per-seed RNG seed is derived from
//! the cell's canonical [`descriptor`] and the seed index, so aggregates
//! are identical at any `--jobs` value and cache hits are exact.

use crate::scenario::Scenario;
use liteworp_chaos::EngineFaultPlan;
use liteworp_obs as obs;
use liteworp_runner::supervisor::{JobContext, JobFailure, JobFaultHook, Supervision};
use liteworp_runner::{
    pool, CacheValue, JobSpec, Json, Manifest, ProgressObserver, ResultCache, RunConfig, RunReport,
    Summary, SweepEngine, SweepExec,
};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Version string folded into every cache key. Bump the suffix whenever
/// simulator or measurement behavior changes, so stale cached results are
/// never reused across code versions.
pub const SIM_CODE_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+sim2");

/// One experiment cell: a scenario configuration to run at many seeds.
#[derive(Debug, Clone)]
pub struct SimCell {
    /// Label for manifests and error reports (e.g. `"fig9 m=2 liteworp"`).
    pub label: String,
    /// The configuration; its `seed` field is ignored (each job gets a
    /// derived seed).
    pub scenario: Scenario,
    /// Independent seeds to run.
    pub seeds: u64,
    /// Offset added to the seed index (kept from the serial harness for
    /// provenance; distinctness comes from the derived seed).
    pub seed_base: u64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Instants (seconds, ascending, ≤ `duration`) at which cumulative
    /// wormhole drops are sampled into [`SeedOutcome::drops_at`].
    pub sample_times: Vec<f64>,
}

impl SimCell {
    /// A cell with no intermediate sampling.
    pub fn snapshot(
        label: impl Into<String>,
        scenario: Scenario,
        seeds: u64,
        seed_base: u64,
        duration: f64,
    ) -> Self {
        SimCell {
            label: label.into(),
            scenario,
            seeds,
            seed_base,
            duration,
            sample_times: Vec::new(),
        }
    }

    /// The canonical description this cell is cached and seeded under.
    pub fn descriptor(&self) -> String {
        let mut canon = self.scenario.clone();
        canon.seed = 0;
        format!(
            "{canon:?}|duration={}|samples={:?}",
            self.duration, self.sample_times
        )
    }
}

/// Everything a figure or table needs from one simulated seed.
///
/// Deliberately universal: every experiment extracts its metrics from the
/// same outcome type, so one cached run serves any experiment that asks
/// the same scenario question.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedOutcome {
    /// Cumulative wormhole drops at each of the cell's `sample_times`.
    pub drops_at: Vec<f64>,
    /// Final cumulative data packets swallowed by the wormhole.
    pub drops: f64,
    /// Data packets originated network-wide.
    pub data_sent: f64,
    /// Established routes, total.
    pub routes_total: f64,
    /// Established routes relayed by a colluder.
    pub routes_malicious: f64,
    /// Whether every colluder was detected somewhere.
    pub all_detected: bool,
    /// Seconds from attack start to the first isolation event.
    pub first_detection_latency: Option<f64>,
    /// Seconds from attack start to complete isolation, if it completed.
    pub isolation_latency: Option<f64>,
    /// Honest nodes falsely isolated anywhere in the network.
    pub false_isolations: f64,
    /// Fraction of frame receptions lost to collisions — the measured
    /// `P_C` the closed-form detection model takes as its one free
    /// parameter (see `tests/differential_detection.rs` and the
    /// `scale_sweep` experiment).
    pub collision_fraction: f64,
}

impl CacheValue for SeedOutcome {
    fn to_json(&self) -> Json {
        Json::object([
            (
                "drops_at",
                Json::Arr(self.drops_at.iter().map(|&d| Json::from(d)).collect()),
            ),
            ("drops", Json::from(self.drops)),
            ("data_sent", Json::from(self.data_sent)),
            ("routes_total", Json::from(self.routes_total)),
            ("routes_malicious", Json::from(self.routes_malicious)),
            ("all_detected", Json::from(self.all_detected)),
            (
                "first_detection_latency",
                Json::from(self.first_detection_latency),
            ),
            ("isolation_latency", Json::from(self.isolation_latency)),
            ("false_isolations", Json::from(self.false_isolations)),
            ("collision_fraction", Json::from(self.collision_fraction)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let f = |k: &str| json.get(k)?.as_f64();
        let opt = |k: &str| match json.get(k) {
            Some(Json::Null) | None => Some(None),
            Some(v) => v.as_f64().map(Some),
        };
        Some(SeedOutcome {
            drops_at: json
                .get("drops_at")?
                .as_arr()?
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<Vec<_>>>()?,
            drops: f("drops")?,
            data_sent: f("data_sent")?,
            routes_total: f("routes_total")?,
            routes_malicious: f("routes_malicious")?,
            all_detected: json.get("all_detected")?.as_bool()?,
            first_detection_latency: opt("first_detection_latency")?,
            isolation_latency: opt("isolation_latency")?,
            false_isolations: f("false_isolations")?,
            collision_fraction: f("collision_fraction")?,
        })
    }
}

/// Execution options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (`None` = `LITEWORP_JOBS` env or all cores).
    pub jobs: Option<usize>,
    /// Use the on-disk result cache.
    pub cache: bool,
    /// Cache directory override (`None` = `results/cache`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Retries after a job's first failed attempt (`--max-retries`).
    pub max_retries: u32,
    /// Per-job deadline in *simulated* seconds (`--job-deadline`).
    pub job_deadline_secs: Option<f64>,
    /// Write-ahead sweep journal path (`--journal`).
    pub journal: Option<std::path::PathBuf>,
    /// Resume finished jobs from the journal (`--resume`).
    pub resume: bool,
    /// Probability of injected transient engine faults per job
    /// (`--engine-faults`; exercises the supervisor, recovered by
    /// retries).
    pub engine_faults: f64,
    /// Seed of the engine-fault plan (`--engine-fault-seed`).
    pub engine_fault_seed: u64,
}

impl Default for ExecOptions {
    /// All supervision features off and no cache — the in-process
    /// default for library callers and tests. Binaries get the cache-on
    /// default via [`ExecOptions::from_flags`].
    fn default() -> Self {
        ExecOptions {
            jobs: None,
            cache: false,
            cache_dir: None,
            max_retries: 0,
            job_deadline_secs: None,
            journal: None,
            resume: false,
            engine_faults: 0.0,
            engine_fault_seed: 0,
        }
    }
}

impl ExecOptions {
    /// Reads the execution flags shared by every experiment binary:
    /// `--jobs N`, `--no-cache`, `--cache-dir <dir>`, `--max-retries N`,
    /// `--job-deadline <sim-secs>`, `--journal <path>`, `--resume`,
    /// `--engine-faults <p>`, `--engine-fault-seed N`. The cache is on by
    /// default for binaries (interrupted sweeps resume).
    pub fn from_flags(flags: &crate::cli::Flags) -> Self {
        let journal = flags.get_str("journal").map(std::path::PathBuf::from);
        let resume = flags.get_bool("resume");
        if resume && journal.is_none() {
            eprintln!("warning: --resume has no effect without --journal <path>");
        }
        ExecOptions {
            jobs: flags.get_opt_usize("jobs"),
            cache: !flags.get_bool("no-cache"),
            cache_dir: flags.get_str("cache-dir").map(std::path::PathBuf::from),
            max_retries: flags.get_u64("max-retries", 0) as u32,
            job_deadline_secs: flags.get_opt_f64("job-deadline"),
            journal,
            resume,
            engine_faults: flags.get_f64("engine-faults", 0.0),
            engine_fault_seed: flags.get_u64("engine-fault-seed", 0),
        }
    }

    pub(crate) fn run_config(&self) -> RunConfig {
        RunConfig {
            threads: pool::resolve_threads(self.jobs),
            cache: self.cache.then(|| {
                ResultCache::new(
                    self.cache_dir
                        .clone()
                        .unwrap_or_else(ResultCache::default_dir),
                )
            }),
            code_version: SIM_CODE_VERSION.to_string(),
        }
    }

    pub(crate) fn supervision(&self) -> Supervision {
        Supervision {
            max_retries: self.max_retries,
            journal: self.journal.clone(),
            resume: self.resume,
            ..Supervision::default()
        }
        .with_deadline_secs(self.job_deadline_secs)
    }

    /// The engine-fault hook, when `--engine-faults` is positive.
    pub(crate) fn engine_fault_plan(&self) -> Option<EngineFaultPlan> {
        (self.engine_faults > 0.0)
            .then(|| EngineFaultPlan::transient(self.engine_fault_seed, self.engine_faults))
    }
}

/// Results of a cell batch: the successful outcomes of cell `i` in seed
/// order at `outcomes[i]`, plus the run manifest.
#[derive(Debug)]
pub struct CellRun {
    /// Per-cell successful outcomes, in seed order.
    pub outcomes: Vec<Vec<SeedOutcome>>,
    /// What the runner did (timings, cache hits, utilization).
    pub manifest: Manifest,
}

/// Runs every seed of every cell on the thread pool and groups the
/// results back per cell.
///
/// Execution is supervised per [`ExecOptions`]: jobs get retries,
/// sim-time deadlines, and optional journaling. A seed that still fails
/// after its retry budget (e.g. no connected deployment found, or a
/// deadline overrun) is quarantined — reported on stderr with its
/// reproducer seed and dropped from its cell's outcomes; the rest of the
/// batch is unaffected and the manifest's `failures` block records it.
pub fn run_cells(cells: &[SimCell], opts: &ExecOptions) -> CellRun {
    let cfg = opts.run_config();
    let mut specs = Vec::new();
    let mut lookup: BTreeMap<(u64, u64), &SimCell> = BTreeMap::new();
    for cell in cells {
        let descriptor = cell.descriptor();
        for s in 0..cell.seeds {
            let spec = JobSpec {
                label: format!("{} seed={}", cell.label, cell.seed_base + s),
                scenario: descriptor.clone(),
                seed: cell.seed_base + s,
            };
            lookup.insert((spec.scenario_hash(), spec.seed), cell);
            specs.push(spec);
        }
    }

    let sup = opts.supervision();
    let fault_plan = opts.engine_fault_plan();
    let hook = fault_plan.as_ref().map(|p| p as &dyn JobFaultHook);
    let report = liteworp_runner::run_supervised(&cfg, &sup, &specs, hook, |job, derived, ctx| {
        let cell = lookup[&(job.scenario_hash(), job.seed)];
        execute(cell, derived, ctx)
    });

    group_outcomes(cells, report)
}

/// Runs every seed of every cell on a warm [`SweepEngine`] — the service
/// path. The jobs, derived seeds, and cache keys are identical to
/// [`run_cells`], so a request served by a daemon reproduces the exact
/// `results_digest` of the batch bins. The observer, if any, sees each
/// job as it settles.
pub fn run_cells_on(
    engine: &SweepEngine,
    cells: &[SimCell],
    sup: &Supervision,
    observer: Option<Arc<ProgressObserver>>,
) -> CellRun {
    let owned: Arc<Vec<SimCell>> = Arc::new(cells.to_vec());
    let mut specs = Vec::new();
    let mut lookup: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for (c, cell) in owned.iter().enumerate() {
        let descriptor = cell.descriptor();
        for s in 0..cell.seeds {
            let spec = JobSpec {
                label: format!("{} seed={}", cell.label, cell.seed_base + s),
                scenario: descriptor.clone(),
                seed: cell.seed_base + s,
            };
            lookup.insert((spec.scenario_hash(), spec.seed), c);
            specs.push(spec);
        }
    }
    let lookup = Arc::new(lookup);
    let exec: Arc<SweepExec<SeedOutcome>> = {
        let owned = Arc::clone(&owned);
        Arc::new(move |job: &JobSpec, derived: u64, ctx: &JobContext| {
            let cell = &owned[lookup[&(job.scenario_hash(), job.seed)]];
            execute(cell, derived, ctx)
        })
    };
    let report = engine.run_sweep(sup, specs, None, exec, observer);
    group_outcomes(cells, report)
}

/// Groups a report's job-ordered results back into per-cell outcome
/// vectors, warning about (and dropping) quarantined seeds.
fn group_outcomes(cells: &[SimCell], report: RunReport<SeedOutcome>) -> CellRun {
    let mut results = report.results.into_iter();
    let mut outcomes = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut per_cell = Vec::with_capacity(cell.seeds as usize);
        for _ in 0..cell.seeds {
            // lint: allow(P002) pool invariant: exactly one JobRun per job index
            match results.next().expect("one result per job") {
                Ok(outcome) => per_cell.push(outcome),
                Err(e) => eprintln!("warning: {e}; excluded from aggregates"),
            }
        }
        outcomes.push(per_cell);
    }
    CellRun {
        outcomes,
        manifest: report.manifest,
    }
}

/// Summarizes one metric over a cell's outcomes.
pub fn summarize(outcomes: &[SeedOutcome], metric: impl Fn(&SeedOutcome) -> f64) -> Summary {
    let xs: Vec<f64> = outcomes.iter().map(metric).collect();
    Summary::of(&xs)
}

fn execute(cell: &SimCell, derived_seed: u64, ctx: &JobContext) -> Result<SeedOutcome, JobFailure> {
    let _job = obs::span("job");
    let mut scenario = cell.scenario.clone();
    scenario.seed = derived_seed;
    let mut run = {
        let _span = obs::span("neighbor_discovery");
        scenario.build()
    };
    let mut drops_at = Vec::with_capacity(cell.sample_times.len());
    for &t in &cell.sample_times {
        ctx.charge_sim_to_secs(t)?;
        {
            let _span = obs::span("event_loop");
            run.run_until_secs(t);
        }
        drops_at.push(run.wormhole_dropped() as f64);
    }
    // Step the tail in chunks, charging sim time before each, so a
    // `--job-deadline` binds mid-run instead of only at the end. The
    // chunk boundaries are a pure function of the cell (duration / 8),
    // and the event queue processes identically under incremental
    // deadlines, so results stay byte-identical with or without a budget.
    let mut t = cell.sample_times.last().copied().unwrap_or(0.0);
    let chunk = (cell.duration / 8.0).max(1.0);
    while t < cell.duration {
        t = (t + chunk).min(cell.duration);
        ctx.charge_sim_to_secs(t)?;
        let _span = obs::span("event_loop");
        run.run_until_secs(t);
    }

    let (routes_total, routes_malicious) = run.route_counts();
    let first_detection_latency = run
        .sim()
        .trace()
        .first_isolation_time()
        .map(|t| t.saturating_since(run.attack_start()).as_secs_f64());
    let malicious: Vec<u32> = run.malicious().iter().map(|m| m.0).collect();
    let falsely_isolated: BTreeSet<u32> = run
        .sim()
        .trace()
        .isolations()
        .filter(|i| !malicious.contains(&i.suspect.0))
        .map(|i| i.suspect.0)
        .collect();

    Ok(SeedOutcome {
        drops_at,
        drops: run.wormhole_dropped() as f64,
        data_sent: run.data_sent() as f64,
        routes_total: routes_total as f64,
        routes_malicious: routes_malicious as f64,
        all_detected: run.all_detected(),
        first_detection_latency,
        isolation_latency: run.isolation_latency_secs(),
        false_isolations: falsely_isolated.len() as f64,
        collision_fraction: run.sim().metrics().collision_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_ignores_seed_but_not_config() {
        let cell = |seed, nodes| {
            SimCell::snapshot(
                "t",
                Scenario {
                    nodes,
                    seed,
                    ..Scenario::default()
                },
                1,
                0,
                100.0,
            )
        };
        assert_eq!(cell(1, 30).descriptor(), cell(2, 30).descriptor());
        assert_ne!(cell(1, 30).descriptor(), cell(1, 40).descriptor());
        let mut timed = cell(1, 30);
        timed.sample_times = vec![50.0];
        assert_ne!(timed.descriptor(), cell(1, 30).descriptor());
    }

    #[test]
    fn seed_outcome_round_trips_through_json() {
        let outcome = SeedOutcome {
            drops_at: vec![1.0, 2.5],
            drops: 2.5,
            data_sent: 100.0,
            routes_total: 12.0,
            routes_malicious: 3.0,
            all_detected: true,
            first_detection_latency: Some(4.25),
            isolation_latency: None,
            false_isolations: 0.0,
            collision_fraction: 0.125,
        };
        let json = outcome.to_json();
        let parsed = Json::parse(&json.dump()).unwrap();
        assert_eq!(SeedOutcome::from_json(&parsed), Some(outcome));
    }

    #[test]
    fn small_batch_runs_and_groups_by_cell() {
        let base = Scenario {
            nodes: 20,
            malicious: 0,
            ..Scenario::default()
        };
        let cells = vec![
            SimCell::snapshot("clean a", base.clone(), 2, 0, 60.0),
            SimCell::snapshot("clean b", base, 1, 100, 60.0),
        ];
        let run = run_cells(&cells, &ExecOptions::default());
        assert_eq!(run.outcomes.len(), 2);
        assert_eq!(run.outcomes[0].len(), 2);
        assert_eq!(run.outcomes[1].len(), 1);
        assert_eq!(run.manifest.jobs, 3);
        for o in run.outcomes.iter().flatten() {
            assert_eq!(o.drops, 0.0, "no attackers, no wormhole drops");
            assert!(o.data_sent > 0.0, "traffic should flow");
        }
    }
}
