//! Figure 9: fraction of packets dropped and fraction of malicious routes
//! vs number of compromised nodes, baseline vs LITEWORP (snapshot at
//! t = 2000 s).
//!
//! Flags: --seeds N (10), --duration S (2000), --nodes N (100),
//!        --jobs N (all cores), --no-cache, --cache-dir DIR,
//!        --trace PATH, --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::fig9::{run_with, Fig9Config};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "fig9");
    let cfg = Fig9Config {
        nodes: flags.get_usize("nodes", 100),
        seeds: flags.get_u64("seeds", 10),
        duration: flags.get_f64("duration", 2000.0),
        ..Fig9Config::default()
    };
    eprintln!("running fig9: {cfg:?}");
    let (rows, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            malicious: cfg
                .colluder_counts
                .iter()
                .copied()
                .find(|&m| m > 0)
                .unwrap_or(2),
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        cfg.duration,
        Some(&manifest),
    );
    println!(
        "Figure 9: wormhole impact at t = {:.0} s ({} nodes, mean of {} runs)\n",
        cfg.duration, cfg.nodes, cfg.seeds
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.colluders.to_string(),
                if r.protected { "LITEWORP" } else { "baseline" }.into(),
                format!("{:.4}", r.fraction_dropped),
                format!("{:.4}", r.fraction_malicious_routes),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["M", "system", "fr. dropped", "fr. malicious routes"],
            &table
        )
    );
    println!(
        "\n{}",
        Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump()
    );
    prof.finish();
}
