//! Figure 6(b): probability of false alarm vs number of neighbors
//! (analytical model, Section 5.1).
//!
//! Flags: --trace PATH, --metrics PATH (runs one instrumented simulation
//! seed alongside the analytical sweep)

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::fig6;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::{fmt_prob, render_table};
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "fig6b");
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            malicious: 2,
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        flags.get_f64("duration", 400.0),
        None,
    );
    let rows = fig6::sweep(fig6::paper_model(), fig6::default_grid());
    println!("Figure 6(b): P(false alarm) vs N_B (same parameters as 6(a))\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.n_b),
                r.guards.to_string(),
                format!("{:.3}", r.p_c),
                fmt_prob(r.p_false_alarm),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["N_B", "guards", "P_C", "P(false alarm)"], &table)
    );
    let worst = rows.iter().map(|r| r.p_false_alarm).fold(0.0, f64::max);
    println!(
        "\nworst case: {} (negligible, as the paper argues)",
        fmt_prob(worst)
    );
    prof.finish();
}
