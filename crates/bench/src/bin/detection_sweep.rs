//! "Every wormhole is detected and isolated within a very short period of
//! time over a large range of scenarios": detection/isolation across
//! network sizes and densities.
//!
//! Flags: --seeds N (10), --duration S (800), --jobs N (all cores),
//!        --no-cache, --cache-dir DIR, --trace PATH, --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::sweep::{run_with, SweepConfig};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "detection_sweep");
    let cfg = SweepConfig {
        seeds: flags.get_u64("seeds", 10),
        duration: flags.get_f64("duration", 800.0),
        node_counts: vec![20, 50, 100, 150],
        densities: vec![6.0, 8.0, 10.0],
    };
    eprintln!("running detection sweep: {cfg:?}");
    let (rows, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.node_counts.first().copied().unwrap_or(50),
            avg_neighbors: cfg.densities.first().copied().unwrap_or(8.0),
            malicious: 2,
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        cfg.duration,
        Some(&manifest),
    );
    println!(
        "Detection & isolation across scenarios (M = 2, {} runs per cell, {} s each)\n",
        cfg.seeds, cfg.duration
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.0}", r.avg_neighbors),
                format!("{:.2}", r.detection_rate),
                format!("{:.1}", r.first_detection_latency),
                format!("{:.1}", r.isolation_latency),
                format!("{:.2}", r.isolation_rate),
                format!("{:.1}", r.drops),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "N",
                "N_B",
                "detection",
                "1st detect [s]",
                "full isolation [s]",
                "isolation rate",
                "drops"
            ],
            &table
        )
    );
    println!(
        "\n{}",
        Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump()
    );
    prof.finish();
}
