//! General-purpose scenario runner: configure a network, an attack, and
//! LITEWORP from the command line and get a run report.
//!
//! ```text
//! run_scenario [--nodes 100] [--neighbors 8] [--malicious 2]
//!              [--protected 1] [--attack wormhole|encapsulation|highpower|relay|rushing]
//!              [--duration 1000] [--seed 1] [--gamma 2] [--ct 6]
//!              [--monitor-data 0] [--sample 100]
//!              [--traffic-sources N] [--require-connected 1]
//!              [--trace PATH] [--metrics PATH]
//! ```
//!
//! `--traffic-sources` caps the number of data-originating nodes and
//! `--require-connected 0` skips the connected-deployment retry — the
//! scale knobs large runs need (see the `scale_sweep` binary).
//!
//! ```text
//! ```

use liteworp::config::Config;
use liteworp_bench::cli::Flags;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::{Scenario, ScenarioAttack};

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "run_scenario");
    let attack_name = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--attack")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "wormhole".into());
    let (attack, tunnel_latency) = match attack_name.as_str() {
        "wormhole" => (ScenarioAttack::Wormhole, 0.0),
        "encapsulation" => (ScenarioAttack::Wormhole, 0.1),
        "highpower" => (ScenarioAttack::HighPower(3.0), 0.0),
        "relay" => (ScenarioAttack::Relay, 0.0),
        "rushing" => (ScenarioAttack::Rushing { drop_data: true }, 0.0),
        other => panic!("unknown attack {other:?}"),
    };
    let scenario = Scenario {
        nodes: flags.get_usize("nodes", 100),
        avg_neighbors: flags.get_f64("neighbors", 8.0),
        malicious: flags.get_usize("malicious", 2),
        protected: flags.get_u64("protected", 1) != 0,
        seed: flags.get_u64("seed", 1),
        attack,
        tunnel_latency,
        liteworp: Config {
            confidence_index: flags.get_usize("gamma", 2),
            malc_threshold: flags.get_u64("ct", 6) as u32,
            monitor_data: flags.get_u64("monitor-data", 0) != 0,
            ..Config::default()
        },
        traffic_sources: flags.get_opt_usize("traffic-sources"),
        require_connected: flags.get_u64("require-connected", 1) != 0,
        ..Scenario::default()
    };
    let duration = flags.get_f64("duration", 1000.0);
    let sample = flags.get_f64("sample", 100.0);

    println!(
        "scenario: {} nodes (N_B = {}), {} malicious ({attack_name}), LITEWORP {}",
        scenario.nodes,
        scenario.avg_neighbors,
        scenario.malicious,
        if scenario.protected { "on" } else { "off" },
    );
    let mut run = scenario.build();
    println!("colluders: {:?}, attack starts at 50 s\n", run.malicious());
    println!(
        "{:>8}  {:>10}  {:>10}  {:>8}  {:>9}  {:>9}",
        "t [s]", "sent", "delivered", "drops", "routes", "detected"
    );
    let mut t = 0.0;
    while t < duration {
        t = (t + sample).min(duration);
        run.run_until_secs(t);
        let (routes, _) = run.route_counts();
        println!(
            "{:>8.0}  {:>10}  {:>10}  {:>8}  {:>9}  {:>9}",
            t,
            run.data_sent(),
            run.data_delivered(),
            run.wormhole_dropped(),
            routes,
            run.all_detected(),
        );
    }

    TelemetryFlags::from_flags(&flags).export_run(&run, None);

    println!();
    let (routes, bad) = run.route_counts();
    println!("routes: {routes} total, {bad} through malicious relays");
    println!("fake-link routes: {}", run.fake_link_routes());
    match run.isolation_latency_secs() {
        Some(l) => println!("complete isolation {l:.1} s after attack start"),
        None => println!("isolation incomplete at end of run"),
    }
    let mal: Vec<u32> = run.malicious().iter().map(|m| m.0).collect();
    let honest: std::collections::BTreeSet<u32> = run
        .sim()
        .trace()
        .isolations()
        .filter(|i| !mal.contains(&i.suspect.0))
        .map(|i| i.suspect.0)
        .collect();
    println!("honest nodes falsely isolated: {}", honest.len());
    println!("\nmetrics:");
    for (k, v) in run.sim().metrics().iter_custom() {
        println!("  {k}: {v}");
    }
    let m = run.sim().metrics();
    println!(
        "  frames: {} sent, {} delivered, {} collided (P_C ~ {:.3})",
        m.frames_sent,
        m.frames_delivered,
        m.frames_collided,
        m.collision_fraction()
    );
    prof.finish();
}
