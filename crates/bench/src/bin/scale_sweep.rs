//! Scale sweep: detection-probability and guard-coverage closed forms
//! checked on 10³–10⁵-node deployments with active wormholes (see
//! `experiments::scale_sweep`). Exits nonzero if any size violates the
//! CI bounds.
//!
//! Flags: --nodes N[,N...] (default 1000,10000,100000), --seeds N (6),
//!        --duration S (150), --traffic-sources N (64),
//!        --guard-links N (2000), --smoke (one 10 000-node seed),
//!        --jobs N, --no-cache, --cache-dir DIR, --trace PATH,
//!        --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::scale_sweep::{check, run_with, scenario_for, ScaleSweepConfig};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "scale_sweep");
    let mut cfg = ScaleSweepConfig {
        seeds: flags.get_u64("seeds", 6),
        duration: flags.get_f64("duration", 150.0),
        traffic_sources: flags.get_usize("traffic-sources", 64),
        guard_links: flags.get_usize("guard-links", 2_000),
        ..ScaleSweepConfig::default()
    };
    if flags.get_bool("smoke") {
        // The CI smoke: a single 10 000-node wormhole run, still checked
        // against both closed forms and digest-pinned by the caller.
        cfg.node_counts = vec![10_000];
        cfg.seeds = 1;
    }
    if let Some(list) = flags.get_str("nodes") {
        cfg.node_counts = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--nodes expects integers, got {s:?}"))
            })
            .collect();
    }
    eprintln!("running scale_sweep: {cfg:?}");
    let (rows, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    if let Some(&n) = cfg.node_counts.first() {
        TelemetryFlags::from_flags(&flags).export_scenario(
            &scenario_for(&cfg, n),
            cfg.duration,
            Some(&manifest),
        );
    }

    println!(
        "Scale sweep: closed forms vs simulation, N_B = {}, {} traffic sources, attack at 50 s\n",
        cfg.avg_neighbors, cfg.traffic_sources
    );
    let header = [
        "N",
        "seeds",
        "N_B meas",
        "guards meas",
        "guards exact",
        "guards Eq(I)",
        "P_detect sim",
        "P_detect model",
        "P_C",
        "data",
        "drops",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.nodes),
                format!("{}", r.seeds),
                format!("{:.2}", r.geometry.measured_neighbors),
                format!("{:.2}", r.geometry.measured_guards),
                format!("{:.2}", r.geometry.predicted_guards_exact),
                format!("{:.2}", r.geometry.predicted_guards_paper),
                format!("{:.3}", r.detection_rate),
                format!("{:.3}", r.predicted_detection),
                format!("{:.4}", r.collision_fraction),
                format!("{:.0}", r.data_sent),
                format!("{:.1}", r.drops),
            ]
        })
        .collect();
    print!("{}", render_table(&header, &table));
    println!(
        "\n{}",
        Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump()
    );
    prof.finish();

    let violations = check(&rows);
    for v in &violations {
        eprintln!("BOUND VIOLATED: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
