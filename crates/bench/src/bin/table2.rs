//! Table 2: simulation input parameters — the paper's values next to the
//! configuration this reproduction actually runs.

use liteworp_bench::experiments::tables::table2;
use liteworp_bench::report::render_table;

fn main() {
    println!("Table 2: input parameter values\n");
    let rows = table2();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.parameter.clone(), r.paper.clone(), r.ours.clone()])
        .collect();
    print!(
        "{}",
        render_table(&["parameter", "paper", "this repo"], &table)
    );
}
