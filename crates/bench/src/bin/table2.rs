//! Table 2: simulation input parameters — the paper's values next to the
//! configuration this reproduction actually runs.
//!
//! Flags: --trace PATH, --metrics PATH (runs one instrumented simulation
//! seed at the tabulated parameters)

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::tables::table2;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "table2");
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            malicious: 2,
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        flags.get_f64("duration", 400.0),
        None,
    );
    println!("Table 2: input parameter values\n");
    let rows = table2();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.parameter.clone(), r.paper.clone(), r.ours.clone()])
        .collect();
    print!(
        "{}",
        render_table(&["parameter", "paper", "this repo"], &table)
    );
    prof.finish();
}
