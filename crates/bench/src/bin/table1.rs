//! Table 1: the wormhole attack-mode taxonomy, each row verified by a
//! live protected simulation run.
//!
//! Flags: --nodes N (40), --duration S (400), --seed N (9),
//!        --trace PATH, --metrics PATH

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::tables::{table1, Table1Config};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "table1");
    let cfg = Table1Config {
        nodes: flags.get_usize("nodes", 40),
        duration: flags.get_f64("duration", 400.0),
        seed: flags.get_u64("seed", 9),
    };
    eprintln!("running table1 verification: {cfg:?}");
    let rows = table1(&cfg);
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            malicious: 2,
            protected: true,
            seed: cfg.seed,
            ..Scenario::default()
        },
        cfg.duration,
        None,
    );
    println!("Table 1: wormhole attack modes (verified live)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.min_compromised.to_string(),
                r.special_requirement.clone(),
                if r.handled_by_liteworp {
                    "yes"
                } else {
                    "NO (par. 4.2.3)"
                }
                .into(),
                if r.verified_neutralized {
                    "verified"
                } else {
                    "NOT verified"
                }
                .into(),
                r.evidence.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "mode",
                "min compromised",
                "special requirement",
                "handled",
                "live check",
                "evidence"
            ],
            &table
        )
    );
    prof.finish();
}
