//! Figure 8: cumulative packets dropped by the wormhole vs simulation
//! time, 100 nodes, M in {2, 4}, with and without LITEWORP.
//!
//! Flags: --seeds N (default 10), --duration S (2000), --nodes N (100),
//!        --sample S (50), --jobs N (all cores), --no-cache,
//!        --cache-dir DIR, --trace PATH, --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::fig8::{run_with, Fig8Config};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "fig8");
    let cfg = Fig8Config {
        nodes: flags.get_usize("nodes", 100),
        seeds: flags.get_u64("seeds", 10),
        duration: flags.get_f64("duration", 2000.0),
        sample_every: flags.get_f64("sample", 50.0),
        ..Fig8Config::default()
    };
    eprintln!("running fig8: {cfg:?}");
    let (series, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            malicious: cfg.colluder_counts.first().copied().unwrap_or(2),
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        cfg.duration,
        Some(&manifest),
    );
    println!(
        "Figure 8: cumulative wormhole drops vs time ({} nodes, attack at 50 s, mean of {} runs)\n",
        cfg.nodes, cfg.seeds
    );
    let header_refs = [
        "t [s]",
        "M=2 baseline",
        "M=2 LITEWORP",
        "M=4 baseline",
        "M=4 LITEWORP",
    ];
    let find = |m: usize, p: bool| {
        series
            .iter()
            .find(|s| s.colluders == m && s.protected == p)
            .expect("series present")
    };
    let (b2, p2, b4, p4) = (find(2, false), find(2, true), find(4, false), find(4, true));
    let rows: Vec<Vec<String>> = b2
        .times
        .iter()
        .enumerate()
        .map(|(i, t)| {
            vec![
                format!("{t:.0}"),
                format!("{:.1}", b2.dropped[i]),
                format!("{:.1}", p2.dropped[i]),
                format!("{:.1}", b4.dropped[i]),
                format!("{:.1}", p4.dropped[i]),
            ]
        })
        .collect();
    print!("{}", render_table(&header_refs, &rows));
    println!(
        "\n{}",
        Json::Arr(series.iter().map(|s| s.to_json()).collect()).dump()
    );
    prof.finish();
}
