//! Scenario × fault-plan fuzzer with an invariant oracle and shrinking.
//!
//! Runs randomized fault plans against simulated deployments, replays
//! every run's event trace through the `liteworp-chaos` oracle, and — on
//! a violation — greedily shrinks the fault plan to a minimal violating
//! form and prints a `--replay` command line that reproduces it exactly.
//!
//! Modes:
//!
//! * sweep (default): `--runs N` randomized fault plans, one derived
//!   scenario seed each. Exits nonzero if any run violates an invariant.
//!   Flags: `--runs` (200), `--seed` (1), `--nodes` (25), `--malicious`
//!   (0), `--duration` (200), `--gamma` (protocol default), `--profile
//!   benign|harsh` (benign), `--jobs N`, `--no-cache`, plus the shared
//!   supervision flags (`--max-retries`, `--job-deadline`, `--journal`,
//!   `--resume`, `--engine-faults`, `--engine-fault-seed`; see
//!   EXPERIMENTS.md).
//! * `--smoke`: fixed-seed CI gate. Phase A sweeps benign fault plans at
//!   the protocol γ and requires zero violations; phase B weakens the
//!   deployment to γ=1, requires the sweep to surface an honest-immunity
//!   violation, shrinks it, and re-runs the emitted reproducer to prove
//!   the command line round-trips. Exits nonzero if either phase fails.
//! * `--replay`: re-executes one exact (scenario seed, fault plan) pair
//!   printed by the shrinker. Exits nonzero when the run violates, so a
//!   reproducer command "failing" means the bug is still there.

use liteworp_bench::chaos_exec::{execute_chaos, run_chaos_cells, ChaosCell, ChaosOutcome};
use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::Scenario;
use liteworp_chaos::{parse_crashes, parse_drifts, FaultPlan, FuzzProfile, Immunity};
use liteworp_runner::{JobSpec, Pcg32};

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "chaos_fuzz");
    let code = if flags.get_bool("replay") {
        replay(&flags)
    } else if flags.get_bool("smoke") {
        smoke(&flags)
    } else {
        sweep(&flags)
    };
    prof.finish();
    std::process::exit(code);
}

/// The scenario every fuzz run perturbs: attack-free (or `--malicious M`)
/// with the γ under test.
fn scenario_from(flags: &Flags, gamma: usize) -> Scenario {
    let mut scenario = Scenario {
        nodes: flags.get_usize("nodes", 25),
        malicious: flags.get_usize("malicious", 0),
        protected: true,
        ..Scenario::default()
    };
    scenario.liteworp.confidence_index = gamma;
    scenario
}

fn profile_from(flags: &Flags) -> FuzzProfile {
    match flags.get_str("profile").unwrap_or("benign") {
        "benign" => FuzzProfile::benign(),
        "harsh" => FuzzProfile::harsh(),
        other => panic!("--profile {other:?}: expected benign or harsh"),
    }
}

/// Honest nodes are only guaranteed immune from *network-wide* isolation
/// when the deployment is attack-free; under a wormhole the oracle still
/// checks quorum, provenance, and bounds but not immunity.
fn immunity_for(scenario: &Scenario) -> Immunity {
    if scenario.malicious == 0 {
        Immunity::NetworkWide
    } else {
        Immunity::Off
    }
}

/// One cell per sampled fault plan, a single derived seed each.
fn build_cells(
    label: &str,
    scenario: &Scenario,
    duration: f64,
    runs: u64,
    master_seed: u64,
    profile: &FuzzProfile,
) -> Vec<ChaosCell> {
    let mut rng = Pcg32::seed_from_u64(master_seed);
    let run_us = (duration * 1e6) as u64;
    (0..runs)
        .map(|i| ChaosCell {
            label: format!("{label} run={i}"),
            scenario: scenario.clone(),
            plan: FaultPlan::sample(&mut rng, scenario.nodes as u32, run_us, profile),
            seeds: 1,
            seed_base: i,
            duration,
            immunity: immunity_for(scenario),
        })
        .collect()
}

/// The scenario seed the runner derives for a one-seed cell, so direct
/// `execute_chaos` calls (shrinking, replay confirmation) reproduce the
/// pool's run bit-for-bit.
fn derived_seed_of(cell: &ChaosCell) -> u64 {
    JobSpec {
        label: cell.label.clone(),
        scenario: cell.descriptor(),
        seed: cell.seed_base,
    }
    .derived_seed()
}

/// Greedy shrink: keep applying the first candidate reduction that still
/// violates, at the *same* scenario seed. The injector's decision stream
/// draws once per reception regardless of the plan's probabilities, so
/// reductions only remove faults — they never reshuffle the survivors.
fn shrink(cell: &ChaosCell, seed: u64) -> (FaultPlan, ChaosOutcome) {
    let mut best = cell.plan.clone();
    let mut outcome = execute_chaos(cell, seed);
    assert!(!outcome.violations.is_empty(), "shrinking a passing run");
    loop {
        let mut improved = false;
        for candidate in best.shrink_candidates() {
            let mut trial = cell.clone();
            trial.plan = candidate.clone();
            let trial_outcome = execute_chaos(&trial, seed);
            if !trial_outcome.violations.is_empty() {
                best = candidate;
                outcome = trial_outcome;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, outcome);
        }
    }
}

/// The exact command line reproducing a (scenario, seed, plan) triple.
fn reproducer(scenario: &Scenario, duration: f64, seed: u64, plan: &FaultPlan) -> String {
    format!(
        "chaos_fuzz --replay --nodes {} --malicious {} --gamma {} --duration {} --cell-seed {} {}",
        scenario.nodes,
        scenario.malicious,
        scenario.liteworp.confidence_index,
        duration,
        seed,
        plan.cli_args()
    )
}

fn report_violation(label: &str, outcome: &ChaosOutcome) {
    eprintln!("{label}: {} violation(s)", outcome.violations.len());
    for v in &outcome.violations {
        eprintln!("  {v}");
    }
}

/// Sweeps cells through the pool; on the first violating run, shrinks it
/// and prints a reproducer. Returns the process exit code.
fn sweep_cells(cells: Vec<ChaosCell>, opts: &ExecOptions, expect_clean: bool) -> i32 {
    let run = run_chaos_cells(&cells, opts);
    eprintln!("{}", run.manifest.summary_line());
    let mut violating = None;
    let mut total_events = 0u64;
    for (cell, outcomes) in cells.iter().zip(&run.outcomes) {
        for outcome in outcomes {
            total_events += outcome.events;
            if !outcome.violations.is_empty() && violating.is_none() {
                violating = Some((cell, outcome.clone()));
            }
        }
    }
    let runs: usize = run.outcomes.iter().map(Vec::len).sum();
    eprintln!("{runs} runs, {total_events} events replayed through the oracle");
    match violating {
        None => {
            println!("ok: {runs} runs, zero invariant violations");
            0
        }
        Some((cell, outcome)) => {
            report_violation(&cell.label, &outcome);
            let seed = derived_seed_of(cell);
            eprintln!("shrinking plan at scenario seed {seed}...");
            let (minimal, min_outcome) = shrink(cell, seed);
            report_violation("shrunk", &min_outcome);
            println!(
                "reproducer: {}",
                reproducer(&cell.scenario, cell.duration, seed, &minimal)
            );
            if expect_clean {
                1
            } else {
                0
            }
        }
    }
}

fn sweep(flags: &Flags) -> i32 {
    let scenario = scenario_from(
        flags,
        flags.get_usize("gamma", Scenario::default().liteworp.confidence_index),
    );
    let cells = build_cells(
        "fuzz",
        &scenario,
        flags.get_f64("duration", 200.0),
        flags.get_u64("runs", 200),
        flags.get_u64("seed", 1),
        &profile_from(flags),
    );
    sweep_cells(cells, &ExecOptions::from_flags(flags), true)
}

/// Fixed-seed CI gate: benign sweep must be clean, γ=1 must break and
/// shrink to a re-runnable reproducer.
fn smoke(flags: &Flags) -> i32 {
    let opts = ExecOptions::from_flags(flags);
    let runs = flags.get_u64("runs", 200);
    let seed = flags.get_u64("seed", 42);
    let duration = flags.get_f64("duration", 200.0);

    eprintln!("smoke A: {runs} benign-fault runs at protocol gamma");
    let scenario = scenario_from(flags, Scenario::default().liteworp.confidence_index);
    let cells = build_cells(
        "smoke-benign",
        &scenario,
        duration,
        runs,
        seed,
        &FuzzProfile::benign(),
    );
    if sweep_cells(cells, &opts, true) != 0 {
        eprintln!("smoke FAILED: benign sweep violated an invariant");
        return 1;
    }

    eprintln!("smoke B: weakened gamma=1 must yield a shrinkable violation");
    let weakened = scenario_from(flags, 1);
    let cells = build_cells(
        "smoke-gamma1",
        &weakened,
        duration,
        runs,
        seed,
        &FuzzProfile::harsh(),
    );
    let run = run_chaos_cells(&cells, &opts);
    eprintln!("{}", run.manifest.summary_line());
    let violating = cells
        .iter()
        .zip(&run.outcomes)
        .find(|(_, outcomes)| outcomes.iter().any(|o| !o.violations.is_empty()));
    let Some((cell, _)) = violating else {
        eprintln!("smoke FAILED: gamma=1 sweep found no violation");
        return 1;
    };
    let cell_seed = derived_seed_of(cell);
    let (minimal, outcome) = shrink(cell, cell_seed);
    report_violation("shrunk gamma=1", &outcome);
    let line = reproducer(&weakened, cell.duration, cell_seed, &minimal);
    println!("reproducer: {line}");

    // Round-trip the reproducer through the replay front end: parsing
    // the printed flags must rebuild the same run and still violate.
    let replay_flags = Flags::parse(line.split_whitespace().skip(1));
    let replayed = replay_outcome(&replay_flags);
    if replayed.violations != outcome.violations {
        eprintln!("smoke FAILED: reproducer did not round-trip");
        report_violation("replayed", &replayed);
        return 1;
    }
    println!("ok: smoke passed (benign clean, gamma=1 reproducibly violates)");
    0
}

fn plan_from_flags(flags: &Flags) -> FaultPlan {
    let plan = FaultPlan {
        seed: flags.get_u64("plan-seed", 1),
        drop: flags.get_f64("drop", 0.0),
        corrupt: flags.get_f64("corrupt", 0.0),
        duplicate: flags.get_f64("duplicate", 0.0),
        delay: flags.get_f64("delay", 0.0),
        max_jitter_us: flags.get_u64("jitter-us", 0),
        crashes: parse_crashes(flags.get_str("crashes").unwrap_or(""))
            .unwrap_or_else(|e| panic!("--crashes: {e}")),
        drifts: parse_drifts(flags.get_str("drifts").unwrap_or(""))
            .unwrap_or_else(|e| panic!("--drifts: {e}")),
    };
    plan.validate().unwrap_or_else(|e| panic!("bad plan: {e}"));
    plan
}

fn replay_outcome(flags: &Flags) -> ChaosOutcome {
    let scenario = scenario_from(flags, flags.get_usize("gamma", 1));
    let cell = ChaosCell {
        label: "replay".into(),
        scenario: scenario.clone(),
        plan: plan_from_flags(flags),
        seeds: 1,
        seed_base: 0,
        duration: flags.get_f64("duration", 200.0),
        immunity: immunity_for(&scenario),
    };
    execute_chaos(&cell, flags.get_u64("cell-seed", 1))
}

fn replay(flags: &Flags) -> i32 {
    let outcome = replay_outcome(flags);
    if outcome.violations.is_empty() {
        println!("replay: no violations ({} events)", outcome.events);
        0
    } else {
        report_violation("replay", &outcome);
        1
    }
}
