//! Section 5.2 cost analysis: closed-form accounting plus live
//! measurements.
//!
//! Flags: --nodes N (100), --duration S (500), --seed N (4),
//!        --trace PATH, --metrics PATH

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::cost::{cost_table, CostConfig};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "cost_table");
    let cfg = CostConfig {
        nodes: flags.get_usize("nodes", 100),
        duration: flags.get_f64("duration", 500.0),
        seed: flags.get_u64("seed", 4),
        ..CostConfig::default()
    };
    eprintln!("running cost measurement: {cfg:?}");
    let rows = cost_table(&cfg);
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            malicious: 2,
            protected: true,
            seed: cfg.seed,
            ..Scenario::default()
        },
        cfg.duration,
        None,
    );
    println!("Section 5.2: LITEWORP cost analysis\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.quantity.clone(), r.analytical.clone(), r.measured.clone()])
        .collect();
    print!(
        "{}",
        render_table(&["quantity", "analytical", "measured"], &table)
    );
    prof.finish();
}
