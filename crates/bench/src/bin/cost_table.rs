//! Section 5.2 cost analysis: closed-form accounting plus live
//! measurements.
//!
//! Flags: --nodes N (100), --duration S (500), --seed N (4)

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::cost::{cost_table, CostConfig};
use liteworp_bench::report::render_table;

fn main() {
    let flags = Flags::from_env();
    let cfg = CostConfig {
        nodes: flags.get_usize("nodes", 100),
        duration: flags.get_f64("duration", 500.0),
        seed: flags.get_u64("seed", 4),
        ..CostConfig::default()
    };
    eprintln!("running cost measurement: {cfg:?}");
    let rows = cost_table(&cfg);
    println!("Section 5.2: LITEWORP cost analysis\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.quantity.clone(), r.analytical.clone(), r.measured.clone()])
        .collect();
    print!(
        "{}",
        render_table(&["quantity", "analytical", "measured"], &table)
    );
}
