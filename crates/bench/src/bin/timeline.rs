//! Prints the chronology of one wormhole run: attack start, suspicions,
//! isolations, and the route milestones in between.
//!
//! Flags: --nodes 50 --duration 400 --seed 1 --malicious 2 --protected 1
//!        --trace PATH --metrics PATH

use liteworp_bench::cli::Flags;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::timeline::{render, timeline};
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "timeline");
    let mut run = Scenario {
        nodes: flags.get_usize("nodes", 50),
        malicious: flags.get_usize("malicious", 2),
        protected: flags.get_u64("protected", 1) != 0,
        seed: flags.get_u64("seed", 1),
        ..Scenario::default()
    }
    .build();
    let duration = flags.get_f64("duration", 400.0);
    run.run_until_secs(duration);
    TelemetryFlags::from_flags(&flags).export_run(&run, None);
    print!("{}", render(&timeline(&run)));
    println!(
        "\nat t = {duration:.0} s: {} data sent, {} delivered, {} swallowed by the wormhole",
        run.data_sent(),
        run.data_delivered(),
        run.wormhole_dropped()
    );
    prof.finish();
}
