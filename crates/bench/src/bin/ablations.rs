//! Ablation study: perturb one design choice at a time and measure what
//! it costs (see `experiments::ablation` for the variant list).
//!
//! Flags: --seeds N (5), --duration S (800), --nodes N (50),
//!        --jobs N (all cores), --no-cache, --cache-dir DIR,
//!        --trace PATH, --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::ablation::{run_with, AblationConfig};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "ablations");
    let cfg = AblationConfig {
        nodes: flags.get_usize("nodes", 50),
        seeds: flags.get_u64("seeds", 5),
        duration: flags.get_f64("duration", 800.0),
    };
    eprintln!("running ablations: {cfg:?}");
    let (rows, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            malicious: 2,
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        cfg.duration,
        Some(&manifest),
    );
    println!(
        "Ablation study ({} nodes, M = 2, {} runs per variant, {} s each)\n",
        cfg.nodes, cfg.seeds, cfg.duration
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.2}", r.detection_rate),
                format!("{:.1}", r.isolation_latency),
                format!("{:.2}", r.isolation_rate),
                format!("{:.1}", r.drops),
                format!("{:.2}", r.false_isolations),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "variant",
                "detection",
                "isolation [s]",
                "isolation rate",
                "drops",
                "false isolations"
            ],
            &table
        )
    );
    println!(
        "\n{}",
        Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump()
    );
    prof.finish();
}
