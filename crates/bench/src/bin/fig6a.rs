//! Figure 6(a): probability of wormhole detection vs number of neighbors
//! (analytical model, Section 5.1).
//!
//! Flags: --trace PATH, --metrics PATH (runs one instrumented simulation
//! seed alongside the analytical sweep)

use liteworp_bench::cli::Flags;
use liteworp_bench::experiments::fig6;
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::{fmt_prob, render_table};
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "fig6a");
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            malicious: 2,
            protected: true,
            seed: 1,
            ..Scenario::default()
        },
        flags.get_f64("duration", 400.0),
        None,
    );
    let rows = fig6::sweep(fig6::paper_model(), fig6::default_grid());
    println!("Figure 6(a): P(wormhole detection) vs N_B");
    println!("(T=7, k=5, gamma=3, M=2, P_C=0.05 at N_B=3 scaling linearly)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.n_b),
                r.guards.to_string(),
                format!("{:.3}", r.p_c),
                fmt_prob(r.p_detect),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["N_B", "guards", "P_C", "P(detect)"], &table)
    );

    // The Section 5.1 planning question: density needed for p% detection.
    println!("\nrequired density for a target detection probability:");
    let model = fig6::paper_model();
    for target in [0.90, 0.95, 0.99] {
        match model.required_neighbors(target) {
            Some(n_b) => println!("  P(detect) >= {target:.2}  ->  N_B >= {n_b:.1}"),
            None => println!("  P(detect) >= {target:.2}  ->  unattainable"),
        }
    }
    prof.finish();
}
