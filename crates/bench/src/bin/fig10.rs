//! Figure 10: detection probability (simulation + analytical) and
//! isolation latency vs the detection confidence index gamma
//! (N_B = 15, M = 2).
//!
//! Flags: --seeds N (10), --duration S (800), --nodes N (100),
//!        --jobs N (all cores), --no-cache, --cache-dir DIR,
//!        --trace PATH, --metrics PATH
//!
//! Supervision (see EXPERIMENTS.md): --max-retries N, --job-deadline
//! SIM_SECS, --journal PATH, --resume, --engine-faults P,
//! --engine-fault-seed N

use liteworp::config::Config;
use liteworp_bench::cli::Flags;
use liteworp_bench::exec::ExecOptions;
use liteworp_bench::experiments::fig10::{run_with, Fig10Config};
use liteworp_bench::obs_out::ProfileFlags;
use liteworp_bench::report::render_table;
use liteworp_bench::telemetry_out::TelemetryFlags;
use liteworp_bench::Scenario;
use liteworp_runner::Json;

fn main() {
    let flags = Flags::from_env();
    let prof = ProfileFlags::from_flags(&flags, "fig10");
    let cfg = Fig10Config {
        nodes: flags.get_usize("nodes", 100),
        seeds: flags.get_u64("seeds", 10),
        duration: flags.get_f64("duration", 800.0),
        ..Fig10Config::default()
    };
    eprintln!("running fig10: {cfg:?}");
    let (rows, manifest) = run_with(&cfg, &ExecOptions::from_flags(&flags));
    eprintln!("{}", manifest.summary_line());
    TelemetryFlags::from_flags(&flags).export_scenario(
        &Scenario {
            nodes: cfg.nodes,
            avg_neighbors: cfg.avg_neighbors,
            malicious: 2,
            protected: true,
            liteworp: Config {
                confidence_index: cfg.gammas.first().copied().unwrap_or(2),
                ..Config::default()
            },
            seed: 1,
            ..Scenario::default()
        },
        cfg.duration,
        Some(&manifest),
    );
    println!(
        "Figure 10: detection probability and isolation latency vs gamma (N_B = {}, M = 2, {} runs each)\n",
        cfg.avg_neighbors, cfg.seeds
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.gamma.to_string(),
                format!("{:.2}", r.sim_detection),
                format!("{:.3}", r.analytic_detection),
                format!("{:.1}", r.isolation_latency),
                format!("{:.2}", r.isolation_completed),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "gamma",
                "P(detect) sim",
                "P(detect) analytic",
                "isolation latency [s]",
                "isolation completed",
            ],
            &table
        )
    );
    println!(
        "\n{}",
        Json::Arr(rows.iter().map(|r| r.to_json()).collect()).dump()
    );
    prof.finish();
}
