//! The Section 6 simulation setup: random deployment at fixed density,
//! exponential data traffic, colluding wormhole nodes, with and without
//! LITEWORP.
//!
//! A [`Scenario`] builds a ready-to-run [`Simulator`]; [`ScenarioRun`]
//! wraps the simulator with the measurement queries the paper's figures
//! need (cumulative wormhole drops, route classification, isolation
//! latency, detection).

use liteworp::config::Config;
use liteworp::types::NodeId as CoreId;
use liteworp_attacks::solo::{HighPowerNode, RelayNode, RushingNode};
use liteworp_attacks::wormhole::{ForgeStrategy, WormholeConfig, WormholeNode};
use liteworp_netsim::field::{Field, NodeId as SimId};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_routing::bootstrap::preload_liteworp;
use liteworp_routing::node::{core_id, ProtocolNode};
use liteworp_routing::packet::Packet;
use liteworp_routing::params::{DiscoveryMode, NodeParams, RouteSelection};
use liteworp_routing::stats::RouteRecord;
use liteworp_runner::rng::{Pcg32, Rng};
use std::collections::BTreeSet;

/// Which attack the malicious nodes mount.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioAttack {
    /// Colluding wormhole (modes 1 and 2) — uses the scenario's
    /// `tunnel_latency`, `forge` and `smart_reply` fields.
    Wormhole,
    /// Mode 3: each malicious node rebroadcasts requests at this range
    /// multiplier.
    HighPower(f64),
    /// Mode 4: each malicious node relays overheard frames verbatim.
    Relay,
    /// Mode 5: rushing; `drop_data` selects whether attracted data is
    /// swallowed.
    Rushing {
        /// Swallow attracted data packets.
        drop_data: bool,
    },
}

/// Full description of one simulation run (defaults = Table 2).
///
/// `Debug` is implemented by hand: the per-seed RNG seeds of every
/// experiment derive from the hash of this struct's Debug string (see
/// `exec::SimCell::descriptor`), so the scale knobs at the tail are
/// printed only when they deviate from the paper defaults. That keeps
/// every paper-scale descriptor — and therefore every derived seed,
/// cache key, and golden baseline — byte-identical to what it was
/// before the knobs existed.
#[derive(Clone)]
pub struct Scenario {
    /// Total nodes `N` (Table 2: 20, 50, 100, 150).
    pub nodes: usize,
    /// Average neighbors per node `N_B` (Table 2: 8).
    pub avg_neighbors: f64,
    /// Number of colluding wormhole nodes `M` (Table 2: 0–4).
    pub malicious: usize,
    /// Run with LITEWORP (`true`) or the unprotected baseline (`false`).
    pub protected: bool,
    /// LITEWORP parameters (γ, `C_t`, `V_f`, `V_d`, δ ...).
    pub liteworp: Config,
    /// RNG seed (deployment, traffic, MAC backoffs).
    pub seed: u64,
    /// Attack start time in seconds (paper: 50).
    pub attack_start: f64,
    /// Wormhole tunnel latency in seconds (0 = out-of-band channel;
    /// > 0 = packet encapsulation).
    pub tunnel_latency: f64,
    /// Previous-hop forging strategy of the colluders.
    pub forge: ForgeStrategy,
    /// Whether colluders also forward replies legitimately to dodge drop
    /// detection.
    pub smart_reply: bool,
    /// Mean data inter-arrival per node in seconds (Table 2: 10).
    pub data_mean: f64,
    /// Mean time between destination changes in seconds (Table 2: 200).
    pub dest_change_mean: f64,
    /// Route cache lifetime in seconds (Table 2: 50).
    pub route_timeout: f64,
    /// Route selection policy (the paper's vulnerable default:
    /// shortest-hops).
    pub route_selection: RouteSelection,
    /// Radio parameters (Table 2: 30 m range, 40 kbps).
    pub radio: RadioConfig,
    /// Attack mode mounted by the malicious nodes.
    pub attack: ScenarioAttack,
    /// Whether out-of-range alerts are relayed through a common neighbor
    /// (ablation knob; default on).
    pub relay_alerts: bool,
    /// Number of nodes that originate data traffic (`None` = all). At
    /// paper scale every node is a source; at 10⁵ nodes that would mean
    /// 10⁵ concurrent route floods, so scale experiments cap the sources
    /// — nodes with ids `>= k` never schedule data (their
    /// `data_interval_mean` is cleared) but still relay, guard, and
    /// answer route requests.
    pub traffic_sources: Option<usize>,
    /// Whether `build` insists on a fully connected deployment (the
    /// paper-scale default). A random geometric graph at `N_B = 8` is
    /// essentially never fully connected once `N` is large (connectivity
    /// needs `N_B ≳ ln N`), so scale experiments disable the retry loop
    /// and accept the giant component plus a few stragglers.
    pub require_connected: bool,
    /// Maximum hops for route-request floods (`None` = network-wide, the
    /// paper's behavior). A 10⁵-node network is hundreds of hops across;
    /// unscoped floods cost O(N) transmissions each, so scale runs scope
    /// discovery like AODV's expanding-ring search (see
    /// `NodeParams::rreq_ttl`).
    pub discovery_ttl: Option<u8>,
    /// When set, each traffic source only addresses destinations within
    /// this many hops of itself (its pool is computed from the deployed
    /// field). Keep it at most `discovery_ttl + 1` so scoped discoveries
    /// actually reach their targets.
    pub local_traffic_hops: Option<u32>,
    /// Honest nodes within two hops of each colluder promoted to traffic
    /// sources (in addition to `traffic_sources`). The paper's 100-node
    /// field puts every source a few hops from the wormhole; a sparse
    /// source cap on a 10⁵-node field would leave the attack starved, so
    /// scale runs pin part of the traffic to the colluders'
    /// neighborhoods, where detection — a per-link local property —
    /// actually happens.
    pub wormhole_local_sources: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            nodes: 100,
            avg_neighbors: 8.0,
            malicious: 2,
            protected: true,
            liteworp: Config::default(),
            seed: 1,
            attack_start: 50.0,
            tunnel_latency: 0.0,
            forge: ForgeStrategy::RotatingNeighbors,
            smart_reply: false,
            data_mean: 10.0,
            dest_change_mean: 200.0,
            route_timeout: 50.0,
            route_selection: RouteSelection::ShortestHops,
            radio: RadioConfig::default(),
            attack: ScenarioAttack::Wormhole,
            relay_alerts: true,
            traffic_sources: None,
            require_connected: true,
            discovery_ttl: None,
            local_traffic_hops: None,
            wormhole_local_sources: 0,
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Scenario");
        s.field("nodes", &self.nodes)
            .field("avg_neighbors", &self.avg_neighbors)
            .field("malicious", &self.malicious)
            .field("protected", &self.protected)
            .field("liteworp", &self.liteworp)
            .field("seed", &self.seed)
            .field("attack_start", &self.attack_start)
            .field("tunnel_latency", &self.tunnel_latency)
            .field("forge", &self.forge)
            .field("smart_reply", &self.smart_reply)
            .field("data_mean", &self.data_mean)
            .field("dest_change_mean", &self.dest_change_mean)
            .field("route_timeout", &self.route_timeout)
            .field("route_selection", &self.route_selection)
            .field("radio", &self.radio)
            .field("attack", &self.attack)
            .field("relay_alerts", &self.relay_alerts);
        // Scale knobs are elided at their paper defaults so the Debug
        // string — which experiment seeds and cache keys hash — is
        // unchanged for every pre-existing scenario (see the struct doc).
        if self.traffic_sources.is_some() {
            s.field("traffic_sources", &self.traffic_sources);
        }
        if !self.require_connected {
            s.field("require_connected", &self.require_connected);
        }
        if self.discovery_ttl.is_some() {
            s.field("discovery_ttl", &self.discovery_ttl);
        }
        if self.local_traffic_hops.is_some() {
            s.field("local_traffic_hops", &self.local_traffic_hops);
        }
        if self.wormhole_local_sources != 0 {
            s.field("wormhole_local_sources", &self.wormhole_local_sources);
        }
        s.finish()
    }
}

/// A built, runnable scenario.
pub struct ScenarioRun {
    sim: Simulator<Packet>,
    malicious: Vec<CoreId>,
    attack_start: SimTime,
}

impl Scenario {
    /// Deploys the field, picks colluders (pairwise more than two hops
    /// apart, per Section 6), builds and bootstraps all nodes.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment or valid colluder placement can
    /// be found for the given seed (try another seed or density).
    pub fn build(&self) -> ScenarioRun {
        assert!(self.malicious <= self.nodes, "more colluders than nodes");
        let mut rng = Pcg32::seed_from_u64(self.seed);
        let field = if self.require_connected {
            Field::connected_with_average_neighbors(
                self.nodes,
                self.avg_neighbors,
                self.radio.range_m,
                500,
                &mut rng,
            )
            // lint: allow(P002) documented panic: no deployment for this seed
            .expect("no connected deployment found")
        } else {
            Field::with_average_neighbors(
                self.nodes,
                self.avg_neighbors,
                self.radio.range_m,
                &mut rng,
            )
        };
        let malicious = choose_colluders(&field, self.malicious, &mut rng)
            // lint: allow(P002) documented panic: no placement for this seed
            .expect("no colluder placement more than 2 hops apart found");

        let params = NodeParams {
            total_nodes: self.nodes as u32,
            liteworp: self.protected.then(|| self.liteworp.clone()),
            key_seed: 0xBEEF ^ self.seed,
            route_timeout: SimDuration::from_secs_f64(self.route_timeout),
            data_interval_mean: Some(SimDuration::from_secs_f64(self.data_mean)),
            dest_change_mean: SimDuration::from_secs_f64(self.dest_change_mean),
            route_selection: self.route_selection,
            discovery: DiscoveryMode::Preloaded,
            relay_alerts: self.relay_alerts,
            rreq_ttl: self.discovery_ttl,
            ..NodeParams::default()
        };

        // The data-originating set: every node by default; with a source
        // cap, the id prefix plus the colluders' honest two-hop
        // neighborhoods (so a sparse cap cannot starve the attack).
        let sources: Option<BTreeSet<usize>> = self.traffic_sources.map(|k| {
            let mut set: BTreeSet<usize> = (0..k.min(self.nodes)).collect();
            for &m in &malicious {
                let mut promoted = 0;
                for n in field.nodes_within_hops(SimId(m.0), 2) {
                    if promoted == self.wormhole_local_sources {
                        break;
                    }
                    if malicious.contains(&core_id(n)) {
                        continue;
                    }
                    set.insert(n.index());
                    promoted += 1;
                }
            }
            set
        });

        let attack_start = SimTime::from_secs_f64(self.attack_start);
        let mut sim = Simulator::new(field, self.radio.clone(), self.seed.wrapping_mul(31) + 7);
        for i in 0..self.nodes {
            let id = CoreId(i as u32);
            let mut node_params = params.clone();
            let is_source = sources.as_ref().is_none_or(|s| s.contains(&i));
            if !is_source {
                node_params.data_interval_mean = None;
            } else if let Some(h) = self.local_traffic_hops {
                let pool: Vec<CoreId> = sim
                    .field()
                    .nodes_within_hops(SimId(i as u32), h)
                    .into_iter()
                    .map(core_id)
                    .collect();
                if pool.is_empty() {
                    // An isolated source has nobody to talk to.
                    node_params.data_interval_mean = None;
                } else {
                    node_params.dest_pool = Some(pool);
                }
            }
            let mut inner = ProtocolNode::new(id, node_params);
            if self.protected {
                // lint: allow(P002) invariant: guarded by self.protected just above
                let lw = inner.liteworp_mut().expect("protection enabled");
                preload_liteworp(lw, SimId(i as u32), sim.field());
            }
            if malicious.contains(&id) {
                match self.attack {
                    ScenarioAttack::Wormhole => {
                        let attack = WormholeConfig {
                            colluders: malicious.iter().copied().filter(|&m| m != id).collect(),
                            active_from: attack_start,
                            tunnel_latency: SimDuration::from_secs_f64(self.tunnel_latency),
                            forge: self.forge,
                            smart_reply: self.smart_reply,
                        };
                        sim.push_node(Box::new(WormholeNode::new(inner, attack)));
                    }
                    ScenarioAttack::HighPower(mult) => {
                        sim.push_node(Box::new(HighPowerNode::new(inner, attack_start, mult)));
                    }
                    ScenarioAttack::Relay => {
                        sim.push_node(Box::new(RelayNode::new(inner, attack_start)));
                    }
                    ScenarioAttack::Rushing { drop_data } => {
                        sim.push_node(Box::new(RushingNode::new(inner, attack_start, drop_data)));
                    }
                }
            } else {
                sim.push_node(Box::new(inner));
            }
        }
        ScenarioRun {
            sim,
            malicious,
            attack_start,
        }
    }
}

/// Picks `m` colluders uniformly at random such that every pair is more
/// than two hops apart (Section 6). Returns `None` when impossible.
fn choose_colluders(field: &Field, m: usize, rng: &mut Pcg32) -> Option<Vec<CoreId>> {
    if m == 0 {
        return Some(Vec::new());
    }
    let mut ids: Vec<u32> = (0..field.len() as u32).collect();
    for _attempt in 0..200 {
        rng.shuffle(&mut ids);
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        for &cand in &ids {
            // Colluders should have neighbors to exploit.
            if field.in_range_of(SimId(cand)).is_empty() {
                continue;
            }
            let far_enough = chosen.iter().all(|&c| {
                field
                    .hop_distance(SimId(c), SimId(cand))
                    .is_none_or(|h| h > 2)
            });
            if far_enough {
                chosen.push(cand);
                if chosen.len() == m {
                    chosen.sort_unstable();
                    return Some(chosen.into_iter().map(CoreId).collect());
                }
            }
        }
    }
    None
}

impl ScenarioRun {
    /// The underlying simulator.
    pub fn sim(&self) -> &Simulator<Packet> {
        &self.sim
    }

    /// Mutable access to the simulator — the chaos harness uses this to
    /// install a fault hook before the run starts.
    pub fn sim_mut(&mut self) -> &mut Simulator<Packet> {
        &mut self.sim
    }

    /// Advances the run to `t` seconds.
    pub fn run_until_secs(&mut self, t: f64) {
        self.sim.run_until(SimTime::from_secs_f64(t));
    }

    /// The colluding node ids.
    pub fn malicious(&self) -> &[CoreId] {
        &self.malicious
    }

    /// When the attack activates.
    pub fn attack_start(&self) -> SimTime {
        self.attack_start
    }

    /// Cumulative data packets swallowed by wormhole endpoints.
    pub fn wormhole_dropped(&self) -> u64 {
        self.sim.metrics().get("wormhole_dropped")
    }

    /// Cumulative data packets originated network-wide.
    pub fn data_sent(&self) -> u64 {
        self.sim.metrics().get("data_sent")
    }

    /// Cumulative data packets delivered to their final destinations.
    pub fn data_delivered(&self) -> u64 {
        self.sim.metrics().get("data_delivered")
    }

    /// Access a node's honest core, whether it is honest or a wormhole
    /// wrapper.
    pub fn protocol_node(&self, id: CoreId) -> &ProtocolNode {
        let logic = self.sim.logic(SimId(id.0));
        if let Some(p) = logic.as_any().downcast_ref::<ProtocolNode>() {
            return p;
        }
        if let Some(w) = logic.as_any().downcast_ref::<WormholeNode>() {
            return w.inner();
        }
        if let Some(a) = logic.as_any().downcast_ref::<HighPowerNode>() {
            return a.inner();
        }
        if let Some(a) = logic.as_any().downcast_ref::<RelayNode>() {
            return a.inner();
        }
        if let Some(a) = logic.as_any().downcast_ref::<RushingNode>() {
            return a.inner();
        }
        // lint: allow(P003) exhaustive downcast over every node type the
        // scenario builder installs; a miss is a builder bug
        panic!("node {id} has an unknown logic type");
    }

    /// All route records established at sources, flattened.
    pub fn all_routes(&self) -> Vec<(CoreId, RouteRecord)> {
        let mut out = Vec::new();
        for i in 0..self.sim.node_count() {
            let id = CoreId(i as u32);
            for rec in self.protocol_node(id).route_log() {
                out.push((id, rec.clone()));
            }
        }
        out
    }

    /// Number of established routes that traverse a *fake link*: two
    /// consecutive relays (or the last relay and the source) that are not
    /// within radio range of each other. High-power and relay wormholes
    /// manufacture exactly such links; LITEWORP's neighbor checks refuse
    /// them.
    pub fn fake_link_routes(&self) -> u64 {
        let mut count = 0;
        for (source, rec) in self.all_routes() {
            let mut path: Vec<CoreId> = rec.relays.clone();
            path.push(source);
            let fake = path
                .windows(2)
                .any(|w| !self.sim.field().in_range(SimId(w[0].0), SimId(w[1].0)));
            if fake {
                count += 1;
            }
        }
        count
    }

    /// `(total routes, routes whose reply was relayed by a colluder)`.
    pub fn route_counts(&self) -> (u64, u64) {
        let mal: BTreeSet<CoreId> = self.malicious.iter().copied().collect();
        let mut total = 0;
        let mut bad = 0;
        for (_, rec) in self.all_routes() {
            total += 1;
            if rec.relays.iter().any(|r| mal.contains(r)) {
                bad += 1;
            }
        }
        (total, bad)
    }

    /// The honest in-range neighbors of a colluder — the nodes that must
    /// isolate it for isolation to be complete.
    pub fn honest_neighbors_of(&self, m: CoreId) -> Vec<CoreId> {
        self.sim
            .field()
            .in_range_of(SimId(m.0))
            .into_iter()
            .map(core_id)
            .filter(|n| !self.malicious.contains(n))
            .collect()
    }

    /// Whether *any* node has detected (isolated) colluder `m`.
    pub fn detected(&self, m: CoreId) -> bool {
        self.sim
            .trace()
            .isolations()
            .any(|i| i.suspect == SimId(m.0))
    }

    /// The time at which *every* honest neighbor of `m` had isolated it,
    /// or `None` if isolation is still incomplete.
    pub fn full_isolation_time(&self, m: CoreId) -> Option<SimTime> {
        let neighbors = self.honest_neighbors_of(m);
        if neighbors.is_empty() {
            return None;
        }
        let mut latest = SimTime::ZERO;
        for n in neighbors {
            let t = self
                .sim
                .trace()
                .isolations()
                .filter(|i| i.suspect == SimId(m.0) && i.guard == SimId(n.0))
                .map(|i| i.time)
                .next()?;
            if t > latest {
                latest = t;
            }
        }
        Some(latest)
    }

    /// Whether every colluder has been detected somewhere.
    pub fn all_detected(&self) -> bool {
        self.malicious.iter().all(|&m| self.detected(m))
    }

    /// Isolation latency in seconds (attack start → all colluders fully
    /// isolated by every honest neighbor), if complete.
    pub fn isolation_latency_secs(&self) -> Option<f64> {
        let mut worst: f64 = 0.0;
        for &m in &self.malicious {
            let t = self.full_isolation_time(m)?;
            worst = worst.max(t.saturating_since(self.attack_start).as_secs_f64());
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protected: bool, seed: u64) -> Scenario {
        Scenario {
            nodes: 30,
            malicious: 2,
            protected,
            seed,
            ..Scenario::default()
        }
    }

    #[test]
    fn colluders_are_far_apart() {
        let run = small(true, 3).build();
        let m = run.malicious();
        assert_eq!(m.len(), 2);
        let h = run.sim().field().hop_distance(SimId(m[0].0), SimId(m[1].0));
        assert!(h.is_none_or(|h| h > 2), "colluders too close: {h:?}");
    }

    #[test]
    fn baseline_wormhole_forms_and_drops_packets() {
        let mut run = small(false, 5).build();
        run.run_until_secs(400.0);
        assert!(
            run.wormhole_dropped() > 0,
            "the wormhole should attract and drop data; metrics: {:?}",
            run.sim().metrics()
        );
        let (total, bad) = run.route_counts();
        assert!(total > 0, "routes should form");
        assert!(bad > 0, "some routes should pass through the wormhole");
    }

    #[test]
    fn liteworp_detects_and_isolates_the_wormhole() {
        let mut run = small(true, 5).build();
        run.run_until_secs(400.0);
        assert!(
            run.all_detected(),
            "every colluder should be detected; trace: {:?}",
            run.sim().trace().events().take(40).collect::<Vec<_>>()
        );
    }

    #[test]
    fn liteworp_curbs_wormhole_drops() {
        let mut base = small(false, 9).build();
        let mut prot = small(true, 9).build();
        base.run_until_secs(600.0);
        prot.run_until_secs(600.0);
        assert!(
            prot.wormhole_dropped() < base.wormhole_dropped(),
            "protected {} vs baseline {}",
            prot.wormhole_dropped(),
            base.wormhole_dropped()
        );
    }

    #[test]
    fn debug_elides_scale_knobs_at_paper_defaults() {
        // Experiment seeds derive from the hash of this Debug string, so
        // a default-knob scenario must render exactly as it did before
        // the scale knobs existed — no new field names may appear.
        let base = format!("{:?}", Scenario::default());
        for knob in [
            "traffic_sources",
            "require_connected",
            "discovery_ttl",
            "local_traffic_hops",
            "wormhole_local_sources",
        ] {
            assert!(!base.contains(knob), "default Debug leaks {knob}");
        }
        let scaled = format!(
            "{:?}",
            Scenario {
                traffic_sources: Some(64),
                require_connected: false,
                discovery_ttl: Some(8),
                local_traffic_hops: Some(8),
                wormhole_local_sources: 8,
                ..Scenario::default()
            }
        );
        for knob in [
            "traffic_sources: Some(64)",
            "require_connected: false",
            "discovery_ttl: Some(8)",
            "local_traffic_hops: Some(8)",
            "wormhole_local_sources: 8",
        ] {
            assert!(scaled.contains(knob), "scaled Debug missing {knob}");
        }
    }

    #[test]
    fn traffic_sources_cap_limits_data_origins() {
        let mut capped = Scenario {
            nodes: 30,
            malicious: 0,
            traffic_sources: Some(0),
            ..Scenario::default()
        }
        .build();
        capped.run_until_secs(200.0);
        assert_eq!(capped.data_sent(), 0, "no sources, no data");

        let mut some = Scenario {
            nodes: 30,
            malicious: 0,
            traffic_sources: Some(5),
            ..Scenario::default()
        }
        .build();
        some.run_until_secs(200.0);
        assert!(some.data_sent() > 0, "capped sources still send");
    }

    #[test]
    fn unconnected_deployment_builds_and_runs() {
        // require_connected = false takes whatever deployment the seed
        // gives — possibly disconnected — without the retry loop.
        let mut run = Scenario {
            nodes: 40,
            malicious: 2,
            require_connected: false,
            seed: 5,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(120.0);
        assert_eq!(run.sim().node_count(), 40);
        assert!(run.data_sent() > 0, "traffic flows in the giant component");
    }

    #[test]
    fn zero_malicious_runs_clean() {
        let mut run = Scenario {
            nodes: 20,
            malicious: 0,
            protected: true,
            seed: 2,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(300.0);
        assert_eq!(run.wormhole_dropped(), 0);
        assert!(run.data_delivered() > 0, "traffic should flow");
        assert!(!run.all_routes().is_empty());
        // No honest node should ever be isolated.
        assert_eq!(run.sim().trace().isolations().count(), 0);
    }
}
