//! Bridges chaos runs (scenario × fault plan) to the runner engine.
//!
//! Mirrors [`crate::exec`]: a [`ChaosCell`] describes one scenario
//! configuration under one [`FaultPlan`] at many seeds; [`run_chaos_cells`]
//! executes all seeds on the runner's thread pool behind the result cache.
//! The fault plan's descriptor is folded into the cell descriptor, so
//! cached outcomes are keyed by the *complete* (scenario, plan) identity
//! and any plan change re-runs.

use crate::exec::ExecOptions;
use crate::scenario::Scenario;
use liteworp_chaos::{check, Immunity, Injector, OracleConfig, Violation};
use liteworp_runner::supervisor::{JobContext, JobFailure, JobFaultHook};
use liteworp_runner::{CacheValue, JobSpec, Json, Manifest};
use std::collections::BTreeMap;

/// One chaos cell: a scenario under a fault plan, at many seeds.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Label for manifests and reports.
    pub label: String,
    /// The scenario; its `seed` field is ignored (derived per job).
    pub scenario: Scenario,
    /// The fault plan injected into every seed of this cell.
    pub plan: liteworp_chaos::FaultPlan,
    /// Independent seeds to run.
    pub seeds: u64,
    /// Offset added to the seed index.
    pub seed_base: u64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// How strictly the oracle holds honest nodes immune in this cell.
    pub immunity: Immunity,
}

impl ChaosCell {
    /// The canonical description this cell is cached and seeded under.
    pub fn descriptor(&self) -> String {
        let mut canon = self.scenario.clone();
        canon.seed = 0;
        format!(
            "chaos|{canon:?}|plan={}|duration={}|immunity={:?}",
            self.plan.descriptor(),
            self.duration,
            self.immunity
        )
    }
}

/// Everything the fuzzer needs from one chaos-injected seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Invariant violations the oracle found, in event order.
    pub violations: Vec<Violation>,
    /// Events replayed by the oracle.
    pub events: u64,
    /// `Isolated` events (all flavors).
    pub isolations: u64,
    /// Honest suspects locally accused (tolerated noise under
    /// network-wide immunity).
    pub honest_local_accusations: u64,
    /// `MalcIncrement` events.
    pub malc_increments: u64,
    /// Watch-buffer expiry sweeps.
    pub watch_expiries: u64,
    /// Whether every colluder was detected (attack cells only).
    pub all_detected: bool,
}

impl CacheValue for ChaosOutcome {
    fn to_json(&self) -> Json {
        Json::object([
            (
                "violations",
                Json::Arr(self.violations.iter().map(|v| v.to_json()).collect()),
            ),
            ("events", Json::from(self.events)),
            ("isolations", Json::from(self.isolations)),
            (
                "honest_local_accusations",
                Json::from(self.honest_local_accusations),
            ),
            ("malc_increments", Json::from(self.malc_increments)),
            ("watch_expiries", Json::from(self.watch_expiries)),
            ("all_detected", Json::from(self.all_detected)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let u = |k: &str| json.get(k)?.as_u64();
        Some(ChaosOutcome {
            violations: json
                .get("violations")?
                .as_arr()?
                .iter()
                .map(Violation::from_json)
                .collect::<Option<Vec<_>>>()?,
            events: u("events")?,
            isolations: u("isolations")?,
            honest_local_accusations: u("honest_local_accusations")?,
            malc_increments: u("malc_increments")?,
            watch_expiries: u("watch_expiries")?,
            all_detected: json.get("all_detected")?.as_bool()?,
        })
    }
}

/// Results of a chaos batch, grouped per cell in seed order.
#[derive(Debug)]
pub struct ChaosRun {
    /// Per-cell successful outcomes.
    pub outcomes: Vec<Vec<ChaosOutcome>>,
    /// What the runner did.
    pub manifest: Manifest,
}

/// Runs every seed of every chaos cell on the thread pool.
pub fn run_chaos_cells(cells: &[ChaosCell], opts: &ExecOptions) -> ChaosRun {
    let cfg = opts.run_config();
    let mut specs = Vec::new();
    let mut lookup: BTreeMap<(u64, u64), &ChaosCell> = BTreeMap::new();
    for cell in cells {
        let descriptor = cell.descriptor();
        for s in 0..cell.seeds {
            let spec = JobSpec {
                label: format!("{} seed={}", cell.label, cell.seed_base + s),
                scenario: descriptor.clone(),
                seed: cell.seed_base + s,
            };
            lookup.insert((spec.scenario_hash(), spec.seed), cell);
            specs.push(spec);
        }
    }
    let sup = opts.supervision();
    let fault_plan = opts.engine_fault_plan();
    let hook = fault_plan.as_ref().map(|p| p as &dyn JobFaultHook);
    let report = liteworp_runner::run_supervised(&cfg, &sup, &specs, hook, |job, derived, ctx| {
        let cell = lookup[&(job.scenario_hash(), job.seed)];
        execute_chaos_supervised(cell, derived, ctx)
    });
    let mut results = report.results.into_iter();
    let mut outcomes = Vec::with_capacity(cells.len());
    for cell in cells {
        let mut per_cell = Vec::with_capacity(cell.seeds as usize);
        for _ in 0..cell.seeds {
            // lint: allow(P002) pool invariant: exactly one JobRun per job index
            match results.next().expect("one result per job") {
                Ok(outcome) => per_cell.push(outcome),
                Err(e) => eprintln!("warning: {e}; excluded from sweep"),
            }
        }
        outcomes.push(per_cell);
    }
    ChaosRun {
        outcomes,
        manifest: report.manifest,
    }
}

/// Builds, faults, runs, and oracle-checks one seed of a chaos cell.
///
/// Public so the shrinking loop can re-execute single candidates
/// synchronously without going through the pool.
pub fn execute_chaos(cell: &ChaosCell, derived_seed: u64) -> ChaosOutcome {
    match execute_chaos_supervised(cell, derived_seed, &JobContext::unsupervised()) {
        Ok(outcome) => outcome,
        // Invariant: an unsupervised context has no deadline, so the
        // supervised body cannot fail.
        Err(failure) => unreachable!("unsupervised chaos run failed: {failure}"),
    }
}

/// The supervised job body: like [`execute_chaos`] but charging simulated
/// time to `ctx` in chunks, so a `--job-deadline` can cut a hung or
/// oversized chaos run short deterministically.
pub fn execute_chaos_supervised(
    cell: &ChaosCell,
    derived_seed: u64,
    ctx: &JobContext,
) -> Result<ChaosOutcome, JobFailure> {
    let mut scenario = cell.scenario.clone();
    scenario.seed = derived_seed;
    let mut run = scenario.build();
    if !cell.plan.is_null() {
        run.sim_mut()
            .set_fault_hook(Box::new(Injector::new(cell.plan.clone())));
    }
    // Chunked stepping mirrors `exec::execute`: boundaries are a pure
    // function of the cell, and the event queue behaves identically under
    // incremental deadlines, so results are unchanged.
    let chunk = (cell.duration / 8.0).max(1.0);
    let mut t = 0.0;
    while t < cell.duration {
        t = (t + chunk).min(cell.duration);
        ctx.charge_sim_to_secs(t)?;
        run.run_until_secs(t);
    }
    let malicious: Vec<u32> = run.malicious().iter().map(|m| m.0).collect();
    let oracle = OracleConfig::from_protocol(&scenario.liteworp, &malicious, cell.immunity);
    let (violations, stats) = check(run.sim().trace().log(), &oracle);
    Ok(ChaosOutcome {
        violations,
        events: stats.events,
        isolations: stats.isolations,
        honest_local_accusations: stats.honest_local_accusations,
        malc_increments: stats.malc_increments,
        watch_expiries: stats.watch_expiries,
        all_detected: run.all_detected(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp_chaos::{FaultPlan, Invariant};

    fn cell(malicious: usize, plan: FaultPlan, immunity: Immunity) -> ChaosCell {
        ChaosCell {
            label: "test".into(),
            scenario: Scenario {
                nodes: 25,
                malicious,
                protected: true,
                ..Scenario::default()
            },
            plan,
            seeds: 1,
            seed_base: 0,
            duration: 200.0,
            immunity,
        }
    }

    #[test]
    fn descriptor_covers_the_plan() {
        let a = cell(0, FaultPlan::default(), Immunity::Strict);
        let mut b = cell(0, FaultPlan::default(), Immunity::Strict);
        b.plan.drop = 0.01;
        assert_ne!(a.descriptor(), b.descriptor());
        let mut c = cell(0, FaultPlan::default(), Immunity::Strict);
        c.immunity = Immunity::Off;
        assert_ne!(a.descriptor(), c.descriptor());
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let outcome = ChaosOutcome {
            violations: vec![Violation {
                invariant: Invariant::AlertQuorum,
                time_us: 12,
                node: 3,
                detail: "example".into(),
            }],
            events: 100,
            isolations: 2,
            honest_local_accusations: 1,
            malc_increments: 5,
            watch_expiries: 4,
            all_detected: false,
        };
        let parsed = Json::parse(&outcome.to_json().dump()).unwrap();
        assert_eq!(ChaosOutcome::from_json(&parsed), Some(outcome));
    }

    #[test]
    fn attack_run_with_null_plan_is_invariant_clean() {
        // End-to-end oracle check of a real wormhole detection run: the
        // full protocol event stream must be legal.
        let outcome = execute_chaos(&cell(2, FaultPlan::default(), Immunity::Off), 42);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert!(outcome.events > 0);
        assert!(outcome.isolations > 0, "wormhole should be detected");
    }

    #[test]
    fn attack_free_run_is_strictly_clean() {
        let outcome = execute_chaos(&cell(0, FaultPlan::default(), Immunity::Strict), 7);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.isolations, 0);
    }
}
