//! The experiment catalog: every sweep a service can serve, addressed by
//! a stable kind name plus a JSON parameter object.
//!
//! [`cells_for`] maps `(kind, params)` to the same [`SimCell`] lists the
//! experiment binaries build, so a daemon request for `"fig9"` executes
//! — and caches under — exactly the jobs `cargo run --bin fig9` would.
//! Unknown kinds and malformed parameters come back as `Err(reason)` so
//! protocol layers can answer with a typed error instead of panicking.

use crate::exec::SimCell;
use crate::experiments::{ablation, fig10, fig8, fig9, sweep};
use crate::scenario::Scenario;
use liteworp_runner::Json;

/// The kind names [`cells_for`] accepts, in catalog order.
pub const KINDS: [&str; 6] = ["fig8", "fig9", "fig10", "sweep", "ablation", "scenario"];

/// Builds the cells for one catalog entry.
///
/// Every parameter is optional; omitted fields keep the experiment's
/// defaults (which reproduce the paper figures). Recognized fields per
/// kind:
///
/// * `fig8` — `nodes`, `seeds`, `duration`, `sample_every`
/// * `fig9` — `nodes`, `seeds`, `duration`
/// * `fig10` — `nodes`, `avg_neighbors`, `seeds`, `duration`
/// * `sweep` — `seeds`, `duration`
/// * `ablation` — `nodes`, `seeds`, `duration`
/// * `scenario` — one custom cell: `nodes`, `malicious`, `protected`,
///   `avg_neighbors`, `seeds`, `duration`
pub fn cells_for(kind: &str, params: &Json) -> Result<Vec<SimCell>, String> {
    if !matches!(params, Json::Obj(_) | Json::Null) {
        return Err("params must be a JSON object".to_string());
    }
    let u = |k: &str| params.get(k).and_then(Json::as_u64);
    let f = |k: &str| params.get(k).and_then(Json::as_f64);
    let b = |k: &str| params.get(k).and_then(Json::as_bool);
    match kind {
        "fig8" => {
            let mut cfg = fig8::Fig8Config::default();
            if let Some(n) = u("nodes") {
                cfg.nodes = n as usize;
            }
            if let Some(s) = u("seeds") {
                cfg.seeds = s;
            }
            if let Some(d) = f("duration") {
                cfg.duration = d;
            }
            if let Some(e) = f("sample_every") {
                cfg.sample_every = e;
            }
            Ok(fig8::cells(&cfg))
        }
        "fig9" => {
            let mut cfg = fig9::Fig9Config::default();
            if let Some(n) = u("nodes") {
                cfg.nodes = n as usize;
            }
            if let Some(s) = u("seeds") {
                cfg.seeds = s;
            }
            if let Some(d) = f("duration") {
                cfg.duration = d;
            }
            Ok(fig9::cells(&cfg))
        }
        "fig10" => {
            let mut cfg = fig10::Fig10Config::default();
            if let Some(n) = u("nodes") {
                cfg.nodes = n as usize;
            }
            if let Some(nb) = f("avg_neighbors") {
                cfg.avg_neighbors = nb;
            }
            if let Some(s) = u("seeds") {
                cfg.seeds = s;
            }
            if let Some(d) = f("duration") {
                cfg.duration = d;
            }
            Ok(fig10::cells(&cfg))
        }
        "sweep" => {
            let mut cfg = sweep::SweepConfig::default();
            if let Some(s) = u("seeds") {
                cfg.seeds = s;
            }
            if let Some(d) = f("duration") {
                cfg.duration = d;
            }
            Ok(sweep::cells(&cfg))
        }
        "ablation" => {
            let mut cfg = ablation::AblationConfig::default();
            if let Some(n) = u("nodes") {
                cfg.nodes = n as usize;
            }
            if let Some(s) = u("seeds") {
                cfg.seeds = s;
            }
            if let Some(d) = f("duration") {
                cfg.duration = d;
            }
            Ok(ablation::cells(&cfg))
        }
        "scenario" => {
            let nodes = u("nodes").unwrap_or(30) as usize;
            if nodes < 4 {
                return Err(format!("scenario needs at least 4 nodes, got {nodes}"));
            }
            let scenario = Scenario {
                nodes,
                malicious: u("malicious").unwrap_or(2) as usize,
                protected: b("protected").unwrap_or(true),
                avg_neighbors: f("avg_neighbors").unwrap_or(8.0),
                ..Scenario::default()
            };
            let label = format!(
                "scenario n={nodes} m={} {}",
                scenario.malicious,
                if scenario.protected {
                    "liteworp"
                } else {
                    "baseline"
                }
            );
            Ok(vec![SimCell::snapshot(
                label,
                scenario,
                u("seeds").unwrap_or(1),
                0,
                f("duration").unwrap_or(200.0),
            )])
        }
        other => Err(format!(
            "unknown experiment kind '{other}' (known: {})",
            KINDS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_yields_cells_with_defaults() {
        for kind in KINDS {
            let cells = cells_for(kind, &Json::Null).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!cells.is_empty(), "{kind} produced no cells");
        }
    }

    #[test]
    fn catalog_cells_match_the_experiment_modules() {
        let catalog = cells_for("fig9", &Json::Null).unwrap();
        let module = fig9::cells(&fig9::Fig9Config::default());
        assert_eq!(catalog.len(), module.len());
        for (a, b) in catalog.iter().zip(&module) {
            assert_eq!(a.descriptor(), b.descriptor());
            assert_eq!(a.label, b.label);
            assert_eq!(a.seed_base, b.seed_base);
        }
    }

    #[test]
    fn params_override_defaults() {
        let params = Json::parse(r#"{"nodes":24,"seeds":2,"duration":100.0}"#).unwrap();
        let cells = cells_for("fig9", &params).unwrap();
        assert!(cells.iter().all(|c| c.scenario.nodes == 24 && c.seeds == 2));
    }

    #[test]
    fn unknown_kind_and_bad_params_are_typed_errors() {
        assert!(cells_for("fig99", &Json::Null)
            .unwrap_err()
            .contains("known:"));
        let not_obj = Json::parse("[1,2]").unwrap();
        assert!(cells_for("fig9", &not_obj).is_err());
        let too_small = Json::parse(r#"{"nodes":2}"#).unwrap();
        assert!(cells_for("scenario", &too_small).is_err());
    }
}
