//! Machine-readable telemetry export behind the `--trace <path>` and
//! `--metrics <path>` flags every experiment binary accepts.
//!
//! `--trace` writes the typed protocol event log as JSONL (one event per
//! line, sim-time order). `--metrics` writes one JSON document with exact
//! per-event-kind counters, the simulator's frame/packet metrics,
//! log2-bucket histograms (detection latency, route hops, per-job wall
//! clock), and — for batch experiments — the full run manifest with the
//! engine's profiling percentiles.
//!
//! Batch experiments aggregate over many seeds and cache only their
//! aggregate outcomes, so the export runs *one dedicated instrumented
//! seed* of a representative scenario (cache-bypassing by construction)
//! and serializes that run's trace; the manifest still describes the full
//! batch.

use crate::cli::Flags;
use crate::scenario::{Scenario, ScenarioRun};
use liteworp_netsim::prelude::TraceKind;
use liteworp_runner::{Json, Manifest};
use liteworp_telemetry::Histogram;
use std::path::{Path, PathBuf};

/// Where (and whether) to export telemetry, parsed from the CLI.
#[derive(Debug, Clone, Default)]
pub struct TelemetryFlags {
    /// `--trace <path>`: JSONL event trace destination.
    pub trace: Option<PathBuf>,
    /// `--metrics <path>`: metrics snapshot destination.
    pub metrics: Option<PathBuf>,
}

impl TelemetryFlags {
    /// Reads `--trace` and `--metrics` from parsed flags.
    pub fn from_flags(flags: &Flags) -> Self {
        TelemetryFlags {
            trace: flags.get_str("trace").map(PathBuf::from),
            metrics: flags.get_str("metrics").map(PathBuf::from),
        }
    }

    /// Whether any export was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Runs one instrumented seed of `scenario` for `duration` simulated
    /// seconds and exports its telemetry. No-op when inactive.
    pub fn export_scenario(&self, scenario: &Scenario, duration: f64, manifest: Option<&Manifest>) {
        if !self.active() {
            return;
        }
        eprintln!(
            "telemetry: instrumented run ({} nodes, M={}, LITEWORP {}, seed {}) for {duration} s",
            scenario.nodes,
            scenario.malicious,
            if scenario.protected { "on" } else { "off" },
            scenario.seed,
        );
        let mut run = scenario.build();
        run.run_until_secs(duration);
        self.export_run(&run, manifest);
    }

    /// Exports the telemetry of an already-finished run. No-op when
    /// inactive.
    pub fn export_run(&self, run: &ScenarioRun, manifest: Option<&Manifest>) {
        if let Some(path) = &self.trace {
            write_or_warn(path, &run.sim().trace().log().to_jsonl());
            eprintln!(
                "telemetry: wrote {} events to {}",
                run.sim().trace().log().len(),
                path.display()
            );
        }
        if let Some(path) = &self.metrics {
            write_or_warn(path, &(metrics_json(run, manifest).dump() + "\n"));
            eprintln!("telemetry: wrote metrics to {}", path.display());
        }
    }
}

/// Builds the `--metrics` document for one finished run.
pub fn metrics_json(run: &ScenarioRun, manifest: Option<&Manifest>) -> Json {
    let log = run.sim().trace().log();
    let m = run.sim().metrics();

    // Detection latency: attack start → each isolation, in milliseconds.
    let mut detection_latency_ms = Histogram::default();
    for iso in run.sim().trace().isolations() {
        let since = iso.time.saturating_since(run.attack_start());
        detection_latency_ms.record(since.as_micros() / 1_000);
    }
    // Hop counts of established routes.
    let mut route_hops = Histogram::default();
    for e in run.sim().trace().events() {
        if let TraceKind::RouteEstablished { hops, .. } = e.kind {
            route_hops.record(hops as u64);
        }
    }
    // Per-job wall clock of the surrounding batch, when there was one.
    let job_wall_ms = manifest.map(|man| {
        let mut h = Histogram::default();
        for j in &man.per_job {
            h.record(j.wall_ms.max(0.0) as u64);
        }
        h
    });
    // Per-job retry counts of the batch (all zeros in a healthy sweep;
    // the manifest's `failures` block has the per-class breakdown).
    let job_retries = manifest.map(|man| {
        let mut h = Histogram::default();
        for j in &man.per_job {
            h.record(j.retries as u64);
        }
        h
    });

    let mut custom: Vec<(&'static str, Json)> = Vec::new();
    for (k, v) in m.iter_custom() {
        custom.push((k, Json::from(v)));
    }

    Json::object([
        (
            "scenario",
            Json::object([
                ("nodes", Json::from(run.sim().node_count())),
                (
                    "malicious",
                    Json::Arr(
                        run.malicious()
                            .iter()
                            .map(|c| Json::from(c.0 as u64))
                            .collect(),
                    ),
                ),
                (
                    "attack_start_s",
                    Json::from(run.attack_start().as_secs_f64()),
                ),
                ("now_s", Json::from(run.sim().now().as_secs_f64())),
            ]),
        ),
        ("events", log.counts_json()),
        ("events_retained", Json::from(log.len())),
        ("events_dropped", Json::from(log.dropped())),
        (
            "sim_metrics",
            Json::object(
                [
                    ("frames_sent", Json::from(m.frames_sent)),
                    ("frames_delivered", Json::from(m.frames_delivered)),
                    ("frames_collided", Json::from(m.frames_collided)),
                    ("frames_lost_noise", Json::from(m.frames_lost_noise)),
                    ("tunnel_messages", Json::from(m.tunnel_messages)),
                    ("mac_deferrals", Json::from(m.mac_deferrals)),
                ]
                .into_iter()
                .chain(custom),
            ),
        ),
        (
            "histograms",
            Json::object([
                ("detection_latency_ms", detection_latency_ms.to_json()),
                ("route_hops", route_hops.to_json()),
                (
                    "job_wall_ms",
                    job_wall_ms.map_or(Json::Null, |h| h.to_json()),
                ),
                (
                    "job_retries",
                    job_retries.map_or(Json::Null, |h| h.to_json()),
                ),
            ]),
        ),
        ("manifest", manifest.map_or(Json::Null, |man| man.to_json())),
    ])
}

fn write_or_warn(path: &Path, contents: &str) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("warning: cannot create {}: {e}", parent.display());
            return;
        }
    }
    // Atomic (temp + rename): a crash mid-export never leaves a torn
    // trace or metrics file behind.
    if let Err(e) = liteworp_runner::cache::atomic_write(path, contents.as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_paths() {
        let f = Flags::parse(["--trace", "t.jsonl", "--metrics", "m.json"]);
        let t = TelemetryFlags::from_flags(&f);
        assert!(t.active());
        assert_eq!(t.trace.as_deref(), Some(Path::new("t.jsonl")));
        assert_eq!(t.metrics.as_deref(), Some(Path::new("m.json")));
        assert!(!TelemetryFlags::from_flags(&Flags::default()).active());
    }

    #[test]
    fn metrics_document_has_the_expected_shape() {
        let mut run = Scenario {
            nodes: 30,
            malicious: 2,
            protected: true,
            seed: 5,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(400.0);
        let doc = metrics_json(&run, None);
        let parsed = Json::parse(&doc.dump()).expect("valid json");
        assert_eq!(
            parsed
                .get("scenario")
                .and_then(|s| s.get("nodes"))
                .and_then(Json::as_u64),
            Some(30)
        );
        let events = parsed.get("events").expect("event counters");
        assert!(events.get("isolated").and_then(Json::as_u64).unwrap_or(0) > 0);
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("detection_latency_ms"))
            .expect("latency histogram");
        assert!(hist.get("count").and_then(Json::as_u64).unwrap_or(0) > 0);
        assert!(!hist
            .get("buckets")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        assert_eq!(parsed.get("manifest"), Some(&Json::Null));
        assert!(
            parsed
                .get("sim_metrics")
                .and_then(|m| m.get("frames_sent"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
    }
}
