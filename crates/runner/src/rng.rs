//! Deterministic, dependency-free randomness: splitmix64 for seed
//! derivation and PCG32 (XSH-RR) as the workhorse generator.
//!
//! Every crate in the workspace draws randomness through this module, so
//! the whole system is reproducible offline with no external RNG crate.
//! The [`Rng`] trait mirrors the small surface the simulator needs
//! (`gen_range`, `gen_f64`, `shuffle`), and [`Pcg32`] is the single
//! concrete generator.
//!
//! # Example
//!
//! ```
//! use liteworp_runner::rng::{Pcg32, Rng};
//!
//! let mut a = Pcg32::seed_from_u64(7);
//! let mut b = Pcg32::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u64..=20);
//! assert!((10..=20).contains(&x));
//! ```

/// Advances a splitmix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into independent stream parameters
/// and to derive per-job seeds from `(scenario_hash, seed)` pairs.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two words into one seed with splitmix64 — the runner's per-job
/// seed derivation: `derive_seed(scenario_hash, seed)` depends only on the
/// job's identity, never on scheduling.
pub fn derive_seed(scenario_hash: u64, seed: u64) -> u64 {
    let mut s = scenario_hash;
    let a = splitmix64(&mut s);
    s ^= seed.wrapping_mul(0xA24B_AED4_963E_E407);
    a ^ splitmix64(&mut s)
}

/// A permuted congruential generator (PCG32, XSH-RR 64/32 variant).
///
/// Small (two words), fast, and statistically solid for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from raw stream parameters.
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(initstate);
        rng.step();
        rng
    }

    /// Creates a generator from a single seed, expanding it with
    /// splitmix64 (the drop-in replacement for `StdRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        Pcg32::new(initstate, initseq)
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }
}

impl Rng for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

/// The uniform-sampling surface the simulator and experiments use.
///
/// Only [`Rng::next_u32`] is required; everything else has a default
/// implementation, so alternative generators (e.g. a counting stub in
/// tests) are one method away.
pub trait Rng {
    /// The next 32 raw bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 raw bits (two 32-bit draws, high word first).
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range of `u32`/`u64`/`usize`/`f64`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeSpec<T>,
        Self: Sized,
    {
        let (lo, hi) = range.inclusive_bounds();
        T::sample_inclusive(self, lo, hi)
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = sample_u64_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[sample_u64_below(self, slice.len() as u64) as usize])
        }
    }
}

/// Uniform in `[0, bound)` via rejection sampling (no modulo bias).
fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sampling range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// The largest value strictly below `hi`, for converting half-open
    /// ranges to inclusive ones.
    fn predecessor(hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
            fn predecessor(hi: Self) -> Self {
                // lint: allow(P002) documented panic: an empty range is a caller bug
                hi.checked_sub(1).expect("empty range ..0")
            }
        }
    )*};
}

impl_sample_int!(u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range {lo}..{hi}");
        lo + rng.gen_f64() * (hi - lo)
    }
    fn predecessor(hi: Self) -> Self {
        // Half-open float ranges keep their upper bound: gen_f64 < 1
        // already makes `hi` (nearly) unreachable, matching uniform
        // sampling over [lo, hi).
        hi
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait RangeSpec<T> {
    /// The `(lo, hi)` inclusive bounds of this range.
    fn inclusive_bounds(self) -> (T, T);
}

impl<T: SampleUniform> RangeSpec<T> for std::ops::Range<T> {
    fn inclusive_bounds(self) -> (T, T) {
        (self.start, T::predecessor(self.end))
    }
}

impl<T: SampleUniform> RangeSpec<T> for std::ops::RangeInclusive<T> {
    fn inclusive_bounds(self) -> (T, T) {
        self.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed_from_u64(1234);
        let mut b = Pcg32::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn known_pcg_reference_values() {
        // Reference values from the canonical pcg32 demo: seed state
        // 42, stream 54.
        let mut rng = Pcg32::new(42, 54);
        let first: Vec<u32> = (0..6).map(|_| rng.next_u32()).collect();
        assert_eq!(
            first,
            vec![
                0xa15c_02b7,
                0x7b47_f409,
                0xba1d_3330,
                0x83d2_f293,
                0xbfa4_784b,
                0xcbed_606e
            ]
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..2000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let g = rng.gen_f64();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Pcg32::seed_from_u64(0).gen_range(5u64..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Pcg32::seed_from_u64(5);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [1, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn derive_seed_is_stable_and_sensitive() {
        let a = derive_seed(1, 2);
        assert_eq!(a, derive_seed(1, 2));
        assert_ne!(a, derive_seed(1, 3));
        assert_ne!(a, derive_seed(2, 2));
        // Seed and hash axes do not commute.
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Pcg32::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
