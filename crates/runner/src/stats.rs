//! The aggregation layer: summary statistics over per-seed results.

use crate::json::Json;

/// Mean, spread, and a 95% confidence interval over independent samples.
///
/// Every field is always finite: empty, singleton, and zero-variance
/// inputs produce the well-defined degenerate interval `mean ± 0` rather
/// than NaN, and non-finite samples are excluded (see [`Summary::of`]) —
/// which matters once degraded sweeps aggregate partial result sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of finite samples summarized.
    pub n: usize,
    /// Sample mean (0 when no finite samples).
    pub mean: f64,
    /// Sample standard deviation (0 with fewer than two finite samples).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`1.96 · s / √n`; 0 with fewer than two finite samples).
    pub ci95: f64,
}

impl Summary {
    /// Summarizes a slice of samples.
    ///
    /// Non-finite samples (NaN, ±∞ — e.g. a ratio metric over an empty
    /// subset in a degraded sweep) are excluded instead of poisoning the
    /// whole aggregate; `n` reports how many finite samples remained.
    ///
    /// The mean is accumulated in slice order, so for a fixed sample
    /// order the result is bit-identical regardless of how the samples
    /// were produced (the runner's determinism contract leans on this).
    pub fn of(xs: &[f64]) -> Summary {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let n = finite.len();
        let mean = mean(&finite);
        let std_dev = std_dev(&finite, mean);
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std_dev / (n as f64).sqrt()
        };
        Summary {
            n,
            mean,
            std_dev,
            ci95,
        }
    }

    /// The interval as explicit `(low, high)` bounds, `mean ± ci95`.
    /// Degenerate cases (n ≤ 1, zero variance) collapse to
    /// `(mean, mean)`.
    pub fn ci_bounds(&self) -> (f64, f64) {
        (self.mean - self.ci95, self.mean + self.ci95)
    }

    /// Renders as `mean ± ci95`.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.ci95)
    }
}

/// Exact nearest-rank percentiles over a small sample set (sorts a copy;
/// fine for per-job timing profiles, wrong tool for millions of samples —
/// use a histogram there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub n: usize,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Computes percentiles; `None` when the slice is empty or any sample
    /// is NaN.
    pub fn of(xs: &[f64]) -> Option<Percentiles> {
        if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Some(Percentiles {
            n: sorted.len(),
            p50: rank(0.50),
            p95: rank(0.95),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Serializes as `{"n": …, "p50": …, "p95": …, "max": …}`.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("n", Json::from(self.n)),
            ("p50", Json::from(self.p50)),
            ("p95", Json::from(self.p95)),
            ("max", Json::from(self.max)),
        ])
    }
}

/// Mean of a slice (0 when empty), accumulated in slice order.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn std_dev(xs: &[f64], mean: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    // Rounding can nudge a zero-variance sum epsilon-negative; clamp so
    // sqrt never manufactures a NaN interval.
    var.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        let s = Summary::of(&[]);
        assert_eq!((s.n, s.mean, s.std_dev, s.ci95), (0, 0.0, 0.0, 0.0));
        let s = Summary::of(&[5.0]);
        assert_eq!((s.n, s.mean, s.std_dev, s.ci95), (1, 5.0, 0.0, 0.0));
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138_089_935).abs() < 1e-6);
        assert!((s.ci95 - 1.96 * s.std_dev / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_intervals_are_never_nan() {
        // Zero variance: every sample identical.
        let s = Summary::of(&[3.0; 5]);
        assert_eq!((s.n, s.mean, s.std_dev, s.ci95), (5, 3.0, 0.0, 0.0));
        assert_eq!(s.ci_bounds(), (3.0, 3.0));
        // Non-finite samples are excluded, not propagated.
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
        assert!(s.std_dev.is_finite() && s.ci95.is_finite());
        // Nothing finite at all collapses to the empty summary.
        let s = Summary::of(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!((s.n, s.mean, s.std_dev, s.ci95), (0, 0.0, 0.0, 0.0));
        // n=1 after filtering: degenerate interval around the sample.
        let s = Summary::of(&[f64::NAN, 7.0]);
        assert_eq!((s.n, s.mean, s.ci95), (1, 7.0, 0.0));
        assert_eq!(s.ci_bounds(), (7.0, 7.0));
    }

    #[test]
    fn display_formats() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.display(1), "2.0 ± 2.0");
    }

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(Percentiles::of(&[]), None);
        assert_eq!(Percentiles::of(&[1.0, f64::NAN]), None);
        let p = Percentiles::of(&[5.0]).unwrap();
        assert_eq!((p.n, p.p50, p.p95, p.max), (1, 5.0, 5.0, 5.0));
        // 1..=100: p50 is the 50th smallest, p95 the 95th.
        let xs: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        let p = Percentiles::of(&xs).unwrap();
        assert_eq!((p.p50, p.p95, p.max), (50.0, 95.0, 100.0));
        let json = p.to_json();
        assert_eq!(json.get("p95").and_then(Json::as_f64), Some(95.0));
    }
}
