//! Failure-domain supervision for batch execution.
//!
//! [`run_supervised`] wraps every pool job in a supervision envelope:
//!
//! * a typed [`JobFailure`] taxonomy instead of stringly panics — panics,
//!   sim-time deadline overruns, corrupt cache entries, I/O errors, and
//!   protocol-invariant violations each land in their own failure class;
//! * a per-job **deadline** in *simulated* time, enforced through the
//!   [`JobContext`] clock seam the job charges its progress to — no
//!   wall-clock is read (lint D001), so deadline verdicts are
//!   deterministic and identical on any host;
//! * **bounded deterministic retries** with capped exponential backoff
//!   whose jitter is drawn from the job's own PCG32 stream, so a rerun of
//!   the sweep retries identically and aggregates stay byte-identical;
//! * **quarantine, not abort**: a job that still fails after its retries
//!   becomes a [`JobError`] entry in the report while the rest of the
//!   sweep completes, and the manifest's [`FailureReport`] records every
//!   failure class, the retry histogram, and the quarantined job ids so
//!   degraded aggregates are never silent;
//! * optional **write-ahead journaling** ([`crate::journal`]): each
//!   completion is fsync'd to a JSONL journal, and a resumed sweep
//!   replays finished jobs from it instead of re-executing them.
//!
//! The [`JobFaultHook`] seam injects failures between the supervisor and
//! the job body, letting the chaos crate exercise every path above
//! deterministically.

use crate::cache::{fnv64, CacheLoad};
use crate::engine::{CacheValue, JobError, JobRecord, JobSpec, Manifest, RunConfig, RunReport};
use crate::journal::{sweep_id, JournalEntry, JournalStatus, SweepJournal};
use crate::json::Json;
use crate::pool;
use crate::rng::{derive_seed, Pcg32, Rng};
use crate::stats::Percentiles;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Salt mixed into a job's derived seed to produce its private backoff
/// stream (distinct from the simulation stream, so retries never perturb
/// simulated behavior).
const BACKOFF_SALT: u64 = 0x4241_434b_4f46_4621; // "BACKOFF!"

/// Why a job failed. Every failure in the engine is one of these classes;
/// the manifest aggregates per-class counts so no degradation is silent.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// The job body panicked; carries the panic message.
    Panic(String),
    /// The job exceeded its simulated-time budget.
    Deadline {
        /// The configured budget, in simulated microseconds.
        budget_us: u64,
        /// The sim time the job tried to charge when it was cut off.
        attempted_us: u64,
    },
    /// A cache entry failed checksum verification (it has been
    /// quarantined; the job recomputes).
    CacheCorrupt(String),
    /// A filesystem or OS error surfaced by the job.
    Io(String),
    /// The chaos oracle found a protocol-invariant violation in the run.
    InvariantViolation(String),
}

impl JobFailure {
    /// Stable lowercase class name, used in manifests and journals.
    pub fn class(&self) -> &'static str {
        match self {
            JobFailure::Panic(_) => "panic",
            JobFailure::Deadline { .. } => "deadline",
            JobFailure::CacheCorrupt(_) => "cache_corrupt",
            JobFailure::Io(_) => "io",
            JobFailure::InvariantViolation(_) => "invariant",
        }
    }

    /// Whether a retry can plausibly change the outcome. Deadlines are
    /// deterministic in sim time — the rerun would overrun identically —
    /// so they quarantine immediately instead of burning retries.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, JobFailure::Deadline { .. })
    }

    /// Serializes for journals and manifests.
    pub fn to_json(&self) -> Json {
        let detail = match self {
            JobFailure::Deadline {
                budget_us,
                attempted_us,
            } => {
                return Json::object([
                    ("class", Json::from(self.class())),
                    ("budget_us", Json::from(*budget_us)),
                    ("attempted_us", Json::from(*attempted_us)),
                ])
            }
            JobFailure::Panic(d)
            | JobFailure::CacheCorrupt(d)
            | JobFailure::Io(d)
            | JobFailure::InvariantViolation(d) => d.clone(),
        };
        Json::object([
            ("class", Json::from(self.class())),
            ("detail", Json::from(detail)),
        ])
    }

    /// Parses a serialized failure back; `None` marks a corrupt record.
    pub fn from_json(json: &Json) -> Option<JobFailure> {
        let class = json.get("class")?.as_str()?;
        if class == "deadline" {
            return Some(JobFailure::Deadline {
                budget_us: json.get("budget_us")?.as_u64()?,
                attempted_us: json.get("attempted_us")?.as_u64()?,
            });
        }
        let detail = json.get("detail")?.as_str()?.to_string();
        match class {
            "panic" => Some(JobFailure::Panic(detail)),
            "cache_corrupt" => Some(JobFailure::CacheCorrupt(detail)),
            "io" => Some(JobFailure::Io(detail)),
            "invariant" => Some(JobFailure::InvariantViolation(detail)),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panic(m) => write!(f, "panic: {m}"),
            JobFailure::Deadline {
                budget_us,
                attempted_us,
            } => write!(
                f,
                "sim-time deadline exceeded: budget {budget_us} us, attempted {attempted_us} us"
            ),
            JobFailure::CacheCorrupt(m) => write!(f, "corrupt cache entry: {m}"),
            JobFailure::Io(m) => write!(f, "io error: {m}"),
            JobFailure::InvariantViolation(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

/// The deterministic clock seam a supervised job runs against.
///
/// The job *charges* its simulated progress to the context before
/// simulating each segment: `charge_sim_to_us(t)` asks "may I advance to
/// sim time `t`?" and answers [`JobFailure::Deadline`] once `t` exceeds
/// the budget. Because the ledger is simulated time, not wall-clock, the
/// same job always hits (or never hits) its deadline, on any machine, at
/// any thread count.
#[derive(Debug)]
pub struct JobContext {
    budget_us: Option<u64>,
    charged_us: AtomicU64,
    attempt: u32,
}

impl JobContext {
    fn new(budget_us: Option<u64>, attempt: u32) -> JobContext {
        JobContext {
            budget_us,
            charged_us: AtomicU64::new(0),
            attempt,
        }
    }

    /// A context with no deadline, for callers that run job bodies
    /// outside the supervisor (e.g. chaos shrinking/replay).
    pub fn unsupervised() -> JobContext {
        JobContext::new(None, 0)
    }

    /// Which attempt this is (0 on the first try, `n` on the n-th retry).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The configured budget, if any, in simulated microseconds.
    pub fn budget_us(&self) -> Option<u64> {
        self.budget_us
    }

    /// The highest sim time charged so far, in microseconds.
    pub fn charged_us(&self) -> u64 {
        self.charged_us.load(Ordering::Relaxed)
    }

    /// Asks to advance simulated time to `target_us` (absolute, from job
    /// start). Fails with [`JobFailure::Deadline`] when the target
    /// exceeds the budget; the job should return that error unmodified.
    pub fn charge_sim_to_us(&self, target_us: u64) -> Result<(), JobFailure> {
        self.charged_us.fetch_max(target_us, Ordering::Relaxed);
        match self.budget_us {
            Some(budget) if target_us > budget => Err(JobFailure::Deadline {
                budget_us: budget,
                attempted_us: target_us,
            }),
            _ => Ok(()),
        }
    }

    /// [`JobContext::charge_sim_to_us`] with the target in seconds, for
    /// simulation code that works in `f64` sim seconds.
    pub fn charge_sim_to_secs(&self, target_secs: f64) -> Result<(), JobFailure> {
        self.charge_sim_to_us((target_secs.max(0.0) * 1e6).round() as u64)
    }
}

/// Fault-injection seam between the supervisor and the job body. A hook
/// decides, per `(job, attempt)`, whether the attempt fails before the
/// body runs — the chaos crate implements this to test the supervisor's
/// retry, quarantine, and reporting paths deterministically.
pub trait JobFaultHook: Sync {
    /// Returns the failure to inject for this attempt, or `None` to let
    /// the attempt run. Must be a pure function of the job's identity and
    /// `attempt` (plus the hook's own seed) so reruns are identical.
    fn inject(&self, job: &JobSpec, attempt: u32) -> Option<JobFailure>;
}

/// Supervision policy for a batch.
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Retries after the first attempt (0 = fail fast). Only retryable
    /// failure classes consume retries; see [`JobFailure::is_retryable`].
    pub max_retries: u32,
    /// Base host backoff before retry `n`, in wall microseconds; the
    /// actual pause is jittered within `[base·2ⁿ/2, base·2ⁿ]` from the
    /// job's own PCG32 stream. 0 disables backoff. The pause only spaces
    /// out host-side work (it is never observable by the simulation).
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff pause, in wall microseconds.
    pub backoff_cap_us: u64,
    /// Per-job deadline in simulated microseconds, enforced through
    /// [`JobContext::charge_sim_to_us`]. `None` = no deadline.
    pub job_deadline_us: Option<u64>,
    /// Write-ahead journal path; `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Resume from `journal` if it records this exact sweep: journaled
    /// completions are replayed instead of re-executed.
    pub resume: bool,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            max_retries: 0,
            backoff_base_us: 1_000,
            backoff_cap_us: 50_000,
            job_deadline_us: None,
            journal: None,
            resume: false,
        }
    }
}

impl Supervision {
    /// Converts a deadline in sim seconds (the unit experiment flags use)
    /// into this policy's microsecond budget.
    pub fn with_deadline_secs(mut self, secs: Option<f64>) -> Self {
        self.job_deadline_us = secs.map(|s| (s.max(0.0) * 1e6).round() as u64);
        self
    }
}

/// The deterministic backoff pause before retry `attempt` (0-based) of a
/// job, in microseconds: capped exponential with jitter drawn from the
/// job's private backoff stream, so a rerun backs off identically.
pub fn backoff_us(derived_seed: u64, attempt: u32, base_us: u64, cap_us: u64) -> u64 {
    if base_us == 0 {
        return 0;
    }
    let exp = base_us
        .saturating_mul(1u64 << attempt.min(20))
        .min(cap_us.max(base_us));
    let mut rng = Pcg32::seed_from_u64(derive_seed(derived_seed, BACKOFF_SALT ^ attempt as u64));
    rng.gen_range(exp / 2..=exp)
}

/// A bounded, seeded restart budget: the reusable face of [`backoff_us`]
/// for supervisors that restart *processes* (or any failure domain)
/// rather than jobs. Each draw consumes one attempt and yields the
/// deterministic pause before that attempt; once `max_restarts` draws
/// have been taken the budget is exhausted and the caller should
/// quarantine the domain instead of restarting it.
///
/// Two budgets built from the same `(derived_seed, max_restarts, base,
/// cap)` yield identical pause sequences, so a rerun of a supervised
/// fabric restarts on the same schedule.
#[derive(Debug, Clone)]
pub struct RestartBudget {
    derived_seed: u64,
    max_restarts: u32,
    used: u32,
    base_us: u64,
    cap_us: u64,
}

impl RestartBudget {
    /// A budget of `max_restarts` attempts paced by
    /// [`backoff_us`]`(derived_seed, attempt, base_us, cap_us)`.
    pub fn new(derived_seed: u64, max_restarts: u32, base_us: u64, cap_us: u64) -> RestartBudget {
        RestartBudget {
            derived_seed,
            max_restarts,
            used: 0,
            base_us,
            cap_us,
        }
    }

    /// Attempts consumed so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Attempts left before the budget is exhausted.
    pub fn remaining(&self) -> u32 {
        self.max_restarts.saturating_sub(self.used)
    }

    /// Draws the next attempt: `Some(pause_us)` to restart after that
    /// pause, `None` when the budget is exhausted.
    pub fn next_backoff_us(&mut self) -> Option<u64> {
        if self.used >= self.max_restarts {
            return None;
        }
        let pause = backoff_us(self.derived_seed, self.used, self.base_us, self.cap_us);
        self.used += 1;
        Some(pause)
    }
}

/// Aggregated failure accounting for one batch, embedded in the
/// [`Manifest`] as the `failures` block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    /// Attempts that panicked (counted per failing attempt).
    pub panics: u64,
    /// Attempts cut off by the sim-time deadline.
    pub deadlines: u64,
    /// Corrupt cache entries detected (quarantined and recomputed; these
    /// usually do *not* fail the job).
    pub cache_corrupt: u64,
    /// Attempts that hit an I/O failure.
    pub io: u64,
    /// Attempts rejected by the protocol-invariant oracle.
    pub invariant: u64,
    /// Histogram of retries needed by jobs that eventually succeeded:
    /// `retries -> job count` (jobs that needed no retry are omitted).
    pub retry_histogram: BTreeMap<u32, u64>,
    /// Jobs answered from the resume journal instead of executing.
    pub journal_hits: u64,
    /// Ids (`label (seed N)`) of jobs that failed even after retries and
    /// were excluded from aggregates.
    pub quarantined: Vec<String>,
}

impl FailureReport {
    /// Counts one failing attempt in its class bucket.
    fn record_attempt(&mut self, failure: &JobFailure) {
        match failure {
            JobFailure::Panic(_) => self.panics += 1,
            JobFailure::Deadline { .. } => self.deadlines += 1,
            JobFailure::CacheCorrupt(_) => self.cache_corrupt += 1,
            JobFailure::Io(_) => self.io += 1,
            JobFailure::InvariantViolation(_) => self.invariant += 1,
        }
    }

    /// True when nothing failed, nothing was retried, and nothing was
    /// quarantined — the batch was entirely healthy.
    pub fn is_empty(&self) -> bool {
        *self == FailureReport::default()
    }

    /// Serializes as the manifest's `failures` block.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("panics", Json::from(self.panics)),
            ("deadlines", Json::from(self.deadlines)),
            ("cache_corrupt", Json::from(self.cache_corrupt)),
            ("io", Json::from(self.io)),
            ("invariant", Json::from(self.invariant)),
            (
                "retry_histogram",
                Json::Obj(
                    self.retry_histogram
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("journal_hits", Json::from(self.journal_hits)),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|q| Json::from(q.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Where a job's result came from.
pub(crate) enum Source<T> {
    /// Replayed from the resume journal.
    Journal(T),
    /// Answered by the verified result cache.
    Cache(T),
    /// Executed in this batch.
    Fresh(T),
}

/// Per-job outcome of the supervision loop, before collection.
pub(crate) struct Supervised<T> {
    pub(crate) outcome: Result<Source<T>, JobFailure>,
    pub(crate) retries: u32,
    pub(crate) corrupt_cache: bool,
}

/// One job after execution, with host-side timing attached. The
/// `result` is `Err` only when the supervision envelope itself
/// panicked (a supervisor bug), never for job-body failures — those
/// are typed inside [`Supervised`].
pub(crate) struct FinishedJob<T> {
    pub(crate) result: Result<Supervised<T>, String>,
    pub(crate) wall_ms: f64,
    pub(crate) queue_wait_ms: f64,
    pub(crate) worker: usize,
}

/// Cache keys for a batch, in job order: the identity the cache, the
/// journal, and the sweep id all agree on.
pub(crate) fn job_keys(cfg: &RunConfig, jobs: &[JobSpec]) -> Vec<u64> {
    jobs.iter()
        .map(|j| crate::cache::ResultCache::key(&j.scenario, j.seed, &cfg.code_version))
        .collect()
}

/// Opens (or resumes) the sweep journal named by the policy, returning
/// the journal handle plus any entries replayable from a previous run.
/// Journal problems degrade to warnings — a sweep never fails because
/// its WAL is unavailable.
pub(crate) fn open_journal(
    sup: &Supervision,
    sweep: u64,
    jobs: usize,
) -> (Option<Mutex<SweepJournal>>, BTreeMap<u64, JournalEntry>) {
    let mut resumed: BTreeMap<u64, JournalEntry> = BTreeMap::new();
    let journal = match &sup.journal {
        None => None,
        Some(path) => {
            let mut opened = None;
            if sup.resume && path.exists() {
                match SweepJournal::resume(path, sweep, jobs) {
                    Ok((j, rec)) => {
                        if rec.torn_bytes > 0 {
                            eprintln!(
                                "warning: journal {}: dropped {} bytes of torn tail \
                                 (crash mid-append); resuming from the last complete entry",
                                path.display(),
                                rec.torn_bytes
                            );
                        }
                        resumed = rec.entries;
                        opened = Some(j);
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: cannot resume journal {}: {e}; starting the sweep fresh",
                            path.display()
                        );
                    }
                }
            }
            let opened = match opened {
                Some(j) => Some(j),
                None => match SweepJournal::create(path, sweep, jobs) {
                    Ok(j) => Some(j),
                    Err(e) => {
                        eprintln!(
                            "warning: cannot create journal {}: {e}; running without a journal",
                            path.display()
                        );
                        None
                    }
                },
            };
            opened.map(Mutex::new)
        }
    };
    (journal, resumed)
}

/// Appends one entry to the sweep journal, if there is one.
pub(crate) fn record_entry(journal: &Option<Mutex<SweepJournal>>, entry: JournalEntry) {
    if let Some(j) = journal {
        let mut guard = j.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = guard.append(&entry) {
            eprintln!("warning: journal append failed: {e}");
        }
    }
}

/// The per-job supervision body shared by the scoped batch path
/// ([`run_supervised`]) and the persistent engine path
/// ([`crate::service::SweepEngine`]): resume-journal replay, verified
/// cache lookup, then up to `1 + max_retries` attempts with
/// deterministic backoff. Identical inputs produce identical outcomes
/// on either path.
// Each argument is one supervision facility; bundling them into a
// context struct would just move the same list one hop away from the
// two call sites that destructure it anyway.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_one<T: CacheValue>(
    job: &JobSpec,
    key: u64,
    resumed: &BTreeMap<u64, JournalEntry>,
    cache: Option<&crate::cache::ResultCache>,
    sup: &Supervision,
    hook: Option<&dyn JobFaultHook>,
    journal: &Option<Mutex<SweepJournal>>,
    exec: &(dyn Fn(&JobSpec, u64, &JobContext) -> Result<T, JobFailure> + Sync),
) -> Supervised<T> {
    let derived = job.derived_seed();

    // 1. Resume journal: a completed job replays its recorded value.
    if let Some(entry) = resumed.get(&key) {
        if entry.status == JournalStatus::Done {
            if let Some(value) = entry.value.as_ref().and_then(T::from_json) {
                return Supervised {
                    outcome: Ok(Source::Journal(value)),
                    retries: entry.retries,
                    corrupt_cache: false,
                };
            }
            eprintln!(
                "warning: journal entry for '{}' (seed {}) no longer decodes; re-executing",
                job.label, job.seed
            );
        }
        // Failed entries get a fresh chance on resume.
    }

    // 2. Verified cache lookup.
    let mut corrupt_cache = false;
    if let Some(cache) = cache {
        match cache.load_checked(key) {
            CacheLoad::Hit(json) => {
                if let Some(value) = T::from_json(&json) {
                    record_entry(
                        journal,
                        JournalEntry::done(key, &job.label, job.seed, 0, json),
                    );
                    return Supervised {
                        outcome: Ok(Source::Cache(value)),
                        retries: 0,
                        corrupt_cache: false,
                    };
                }
                // Stale schema: valid bytes, old shape — plain miss.
            }
            CacheLoad::Miss => {}
            CacheLoad::Corrupt(reason) => {
                corrupt_cache = true;
                eprintln!(
                    "warning: quarantined corrupt cache entry for '{}' (seed {}, key \
                     {key:016x}): {reason}; recomputing",
                    job.label, job.seed
                );
            }
        }
    }

    // 3. Supervised attempts.
    let mut retries = 0;
    let mut last_failure: Option<JobFailure> = None;
    for attempt in 0..=sup.max_retries {
        if attempt > 0 {
            retries = attempt;
            let pause = backoff_us(
                derived,
                attempt - 1,
                sup.backoff_base_us,
                sup.backoff_cap_us,
            );
            if pause > 0 {
                std::thread::sleep(std::time::Duration::from_micros(pause));
            }
        }
        let ctx = JobContext::new(sup.job_deadline_us, attempt);
        let attempt_result = match hook.and_then(|h| h.inject(job, attempt)) {
            Some(injected) => Err(injected),
            None => match catch_unwind(AssertUnwindSafe(|| exec(job, derived, &ctx))) {
                Ok(r) => r,
                Err(payload) => Err(JobFailure::Panic(pool::panic_message(payload))),
            },
        };
        match attempt_result {
            Ok(value) => {
                let json = value.to_json();
                if let Some(cache) = cache {
                    if let Err(e) = cache.store(key, &json) {
                        eprintln!("warning: cache store failed for {}: {e}", job.label);
                    }
                }
                record_entry(
                    journal,
                    JournalEntry::done(key, &job.label, job.seed, retries, json),
                );
                return Supervised {
                    outcome: Ok(Source::Fresh(value)),
                    retries,
                    corrupt_cache,
                };
            }
            Err(failure) => {
                let retryable = failure.is_retryable();
                last_failure = Some(failure);
                if !retryable {
                    break;
                }
            }
        }
    }
    let failure = last_failure
        .unwrap_or_else(|| JobFailure::Io("supervisor ran no attempt (impossible)".into()));
    record_entry(
        journal,
        JournalEntry::failed(key, &job.label, job.seed, retries, failure.to_json()),
    );
    Supervised {
        outcome: Err(failure),
        retries,
        corrupt_cache,
    }
}

/// Folds per-job outcomes into the ordered result vector, the failure
/// accounting, and the manifest — the collection half shared by both
/// execution paths. `finished` must be in job order.
pub(crate) fn build_report<T: CacheValue>(
    jobs: &[JobSpec],
    keys: &[u64],
    finished: Vec<FinishedJob<T>>,
    threads: usize,
    wall_ms: f64,
    utilization: Vec<f64>,
) -> RunReport<T> {
    let mut results: Vec<Result<T, JobError>> = Vec::with_capacity(jobs.len());
    let mut per_job = Vec::with_capacity(jobs.len());
    let mut failures = FailureReport::default();
    let (mut cache_hits, mut journal_hits, mut misses, mut failed) = (0, 0, 0, 0);
    for ((job, run), key) in jobs.iter().zip(finished).zip(keys) {
        // The supervision body catches job panics itself, so the Err
        // path only fires if the supervisor has a bug.
        let supervised = match run.result {
            Ok(s) => s,
            Err(msg) => Supervised {
                outcome: Err(JobFailure::Panic(msg)),
                retries: 0,
                corrupt_cache: false,
            },
        };
        if supervised.corrupt_cache {
            failures.cache_corrupt += 1;
        }
        if supervised.retries > 0 {
            // Each completed retry implies that many failed attempts
            // preceded the outcome; the histogram tracks the successful
            // jobs' retry counts (quarantined jobs appear separately).
            if supervised.outcome.is_ok() {
                *failures
                    .retry_histogram
                    .entry(supervised.retries)
                    .or_insert(0) += 1;
            }
        }
        let (outcome, cached, journaled) = match supervised.outcome {
            Ok(Source::Journal(v)) => {
                journal_hits += 1;
                (Ok(v), false, true)
            }
            Ok(Source::Cache(v)) => {
                cache_hits += 1;
                (Ok(v), true, false)
            }
            Ok(Source::Fresh(v)) => {
                misses += 1;
                (Ok(v), false, false)
            }
            Err(failure) => {
                failed += 1;
                failures.record_attempt(&failure);
                failures
                    .quarantined
                    .push(format!("{} (seed {})", job.label, job.seed));
                (
                    Err(JobError {
                        label: job.label.clone(),
                        seed: job.seed,
                        derived_seed: job.derived_seed(),
                        failure,
                    }),
                    false,
                    false,
                )
            }
        };
        per_job.push(JobRecord {
            label: job.label.clone(),
            seed: job.seed,
            key: *key,
            cached,
            journaled,
            retries: supervised.retries,
            failure: outcome.as_ref().err().map(|e| e.failure.class()),
            failed: outcome.is_err(),
            wall_ms: run.wall_ms,
            queue_wait_ms: run.queue_wait_ms,
            worker: run.worker,
        });
        results.push(outcome);
    }
    failures.journal_hits = journal_hits as u64;

    let results_digest = digest_results(&results);

    let walls = |pred: &dyn Fn(&JobRecord) -> bool| -> Vec<f64> {
        per_job
            .iter()
            .filter(|j| pred(j))
            .map(|j| j.wall_ms)
            .collect()
    };
    let job_duration_ms = Percentiles::of(&walls(&|_| true));
    let queue_wait_ms =
        Percentiles::of(&per_job.iter().map(|j| j.queue_wait_ms).collect::<Vec<_>>());
    let cache_hit_ms = Percentiles::of(&walls(&|j| j.cached));
    let cache_miss_ms = Percentiles::of(&walls(&|j| !j.cached && !j.journaled && !j.failed));

    RunReport {
        results,
        manifest: Manifest {
            threads,
            jobs: jobs.len(),
            cache_hits,
            journal_hits,
            cache_misses: misses,
            failed,
            wall_ms,
            utilization,
            job_duration_ms,
            queue_wait_ms,
            cache_hit_ms,
            cache_miss_ms,
            results_digest,
            failures,
            per_job,
        },
    }
}

/// Executes a batch under a supervision policy.
///
/// Per job, in order: resume-journal replay, verified cache lookup
/// (corrupt entries quarantined and recomputed), then up to
/// `1 + max_retries` attempts of `exec(job, derived_seed, ctx)` with
/// deterministic backoff between attempts. Panics are caught per attempt
/// and typed as [`JobFailure::Panic`]. Jobs that exhaust their retries
/// are quarantined as [`JobError`]s; the batch always completes and the
/// manifest's [`FailureReport`] accounts for every failure.
pub fn run_supervised<T, F>(
    cfg: &RunConfig,
    sup: &Supervision,
    jobs: &[JobSpec],
    hook: Option<&dyn JobFaultHook>,
    exec: F,
) -> RunReport<T>
where
    T: CacheValue + Send,
    F: Fn(&JobSpec, u64, &JobContext) -> Result<T, JobFailure> + Sync,
{
    // lint: allow(D001) batch wall-clock for the manifest profile block;
    // results, retries and deadlines never depend on it
    let started = Instant::now();
    let keys = job_keys(cfg, jobs);
    let sweep = sweep_id(&keys, &cfg.code_version);
    let (journal, resumed) = open_journal(sup, sweep, jobs.len());

    let (runs, pool_stats) = pool::run(cfg.threads, jobs.len(), |i| {
        supervise_one(
            &jobs[i],
            keys[i],
            &resumed,
            cfg.cache.as_ref(),
            sup,
            hook,
            &journal,
            &exec,
        )
    });

    let finished = runs
        .into_iter()
        .map(|run| FinishedJob {
            result: run.result,
            wall_ms: run.elapsed.as_secs_f64() * 1000.0,
            queue_wait_ms: run.queue_wait.as_secs_f64() * 1000.0,
            worker: run.worker,
        })
        .collect();

    build_report(
        jobs,
        &keys,
        finished,
        pool_stats.threads,
        started.elapsed().as_secs_f64() * 1000.0,
        pool_stats.utilization(),
    )
}

/// The order-sensitive FNV digest of a batch's results: successful
/// results contribute their canonical JSON dump, quarantined slots a
/// fixed marker. Two sweeps agree on this digest iff they produced
/// byte-identical results in the same job order — the equality CI's
/// retry/resume proofs assert.
pub fn digest_results<T: CacheValue>(results: &[Result<T, JobError>]) -> u64 {
    let mut bytes = Vec::new();
    for r in results {
        match r {
            Ok(v) => {
                bytes.extend_from_slice(v.to_json().dump().as_bytes());
                bytes.push(b'\n');
            }
            Err(_) => bytes.extend_from_slice(b"!quarantined\n"),
        }
    }
    fnv64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn restart_budget_is_deterministic_and_bounded() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut b = RestartBudget::new(seed, 3, 1_000, 50_000);
            std::iter::from_fn(|| b.next_backoff_us()).collect()
        };
        let a = draws(7);
        assert_eq!(a.len(), 3, "budget of 3 yields exactly 3 draws");
        assert_eq!(a, draws(7), "same seed, same pause schedule");
        assert_ne!(a, draws(8), "different seed, different jitter");
        for (attempt, pause) in a.iter().enumerate() {
            assert_eq!(*pause, backoff_us(7, attempt as u32, 1_000, 50_000));
        }

        let mut b = RestartBudget::new(7, 3, 1_000, 50_000);
        assert_eq!((b.used(), b.remaining()), (0, 3));
        b.next_backoff_us();
        assert_eq!((b.used(), b.remaining()), (1, 2));
    }

    #[test]
    fn restart_budget_edge_cases() {
        // A zero budget quarantines immediately.
        let mut none = RestartBudget::new(1, 0, 1_000, 50_000);
        assert_eq!(none.next_backoff_us(), None);
        assert_eq!(none.remaining(), 0);
        // A zero base means restart immediately (backoff_us contract).
        let mut eager = RestartBudget::new(1, 2, 0, 50_000);
        assert_eq!(eager.next_backoff_us(), Some(0));
        assert_eq!(eager.next_backoff_us(), Some(0));
        assert_eq!(eager.next_backoff_us(), None);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Val(f64);

    impl CacheValue for Val {
        fn to_json(&self) -> Json {
            Json::object([("v", Json::from(self.0))])
        }
        fn from_json(json: &Json) -> Option<Self> {
            json.get("v")?.as_f64().map(Val)
        }
    }

    fn jobs(n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|seed| JobSpec {
                label: format!("cell seed={seed}"),
                scenario: "sup-test-scenario".into(),
                seed,
            })
            .collect()
    }

    fn no_cache(threads: usize) -> RunConfig {
        RunConfig {
            threads,
            cache: None,
            code_version: "sup-test-v1".into(),
        }
    }

    /// Fails the first `faulty` attempts of every job whose seed is in
    /// `targets`, deterministically.
    struct Transient {
        targets: Vec<u64>,
        faulty: u32,
    }

    impl JobFaultHook for Transient {
        fn inject(&self, job: &JobSpec, attempt: u32) -> Option<JobFailure> {
            (self.targets.contains(&job.seed) && attempt < self.faulty)
                .then(|| JobFailure::Io(format!("injected transient io (attempt {attempt})")))
        }
    }

    #[test]
    fn failure_json_round_trips() {
        for f in [
            JobFailure::Panic("boom".into()),
            JobFailure::Deadline {
                budget_us: 10,
                attempted_us: 55,
            },
            JobFailure::CacheCorrupt("bad checksum".into()),
            JobFailure::Io("disk on fire".into()),
            JobFailure::InvariantViolation("alert quorum".into()),
        ] {
            let parsed = Json::parse(&f.to_json().dump()).unwrap();
            assert_eq!(JobFailure::from_json(&parsed), Some(f));
        }
    }

    #[test]
    fn deadline_is_deterministic_in_sim_time() {
        let ctx = JobContext::new(Some(1_000_000), 0);
        assert!(ctx.charge_sim_to_us(500_000).is_ok());
        assert!(ctx.charge_sim_to_secs(1.0).is_ok(), "exactly at budget");
        let err = ctx.charge_sim_to_us(1_000_001).unwrap_err();
        assert_eq!(
            err,
            JobFailure::Deadline {
                budget_us: 1_000_000,
                attempted_us: 1_000_001
            }
        );
        assert_eq!(ctx.charged_us(), 1_000_001);
        assert!(!err.is_retryable(), "deadlines repeat identically");
        let free = JobContext::unsupervised();
        assert!(free.charge_sim_to_secs(1e9).is_ok());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let a = backoff_us(42, 0, 1_000, 50_000);
        assert_eq!(a, backoff_us(42, 0, 1_000, 50_000), "same job, same pause");
        assert!((500..=1_000).contains(&a), "{a}");
        let late = backoff_us(42, 10, 1_000, 50_000);
        assert!((25_000..=50_000).contains(&late), "capped: {late}");
        assert_eq!(backoff_us(42, 0, 0, 50_000), 0, "base 0 disables backoff");
        assert_ne!(
            backoff_us(1, 3, 1_000, 50_000),
            backoff_us(2, 3, 1_000, 50_000),
            "jitter decorrelates jobs"
        );
    }

    #[test]
    fn transient_failures_are_retried_to_the_same_digest() {
        let js = jobs(8);
        let exec = |j: &JobSpec, derived: u64, _: &JobContext| {
            Ok(Val((j.seed as f64) + (derived % 7) as f64))
        };
        let clean = run_supervised(&no_cache(4), &Supervision::default(), &js, None, exec);
        assert!(clean.manifest.failures.is_empty());

        let hook = Transient {
            targets: vec![1, 4, 6],
            faulty: 2,
        };
        let sup = Supervision {
            max_retries: 2,
            backoff_base_us: 10,
            ..Supervision::default()
        };
        let faulty = run_supervised(&no_cache(4), &sup, &js, Some(&hook), exec);
        assert_eq!(faulty.manifest.failed, 0, "all jobs recovered");
        assert_eq!(
            faulty.manifest.results_digest, clean.manifest.results_digest,
            "retried sweep is byte-identical to the clean one"
        );
        assert_eq!(faulty.manifest.failures.io, 0, "recovered attempts");
        assert_eq!(faulty.manifest.failures.retry_histogram.get(&2), Some(&3));
        assert_eq!(faulty.manifest.per_job[1].retries, 2);
        assert_eq!(faulty.manifest.per_job[0].retries, 0);
    }

    #[test]
    fn exhausted_retries_quarantine_without_sinking_the_batch() {
        let js = jobs(6);
        let hook = Transient {
            targets: vec![2],
            faulty: 5,
        };
        let sup = Supervision {
            max_retries: 1,
            backoff_base_us: 10,
            ..Supervision::default()
        };
        let report = run_supervised(&no_cache(3), &sup, &js, Some(&hook), |j, _, _| {
            Ok(Val(j.seed as f64))
        });
        assert_eq!(report.manifest.failed, 1);
        assert_eq!(report.successes().count(), 5);
        assert_eq!(report.manifest.failures.io, 1);
        assert_eq!(
            report.manifest.failures.quarantined,
            vec!["cell seed=2 (seed 2)".to_string()]
        );
        let err = report.results[2].as_ref().unwrap_err();
        assert_eq!(err.failure.class(), "io");
        assert_eq!(err.derived_seed, js[2].derived_seed(), "reproducer seed");
        assert_eq!(report.manifest.per_job[2].failure, Some("io"));
        assert_eq!(report.manifest.per_job[2].retries, 1);
    }

    #[test]
    fn deadline_quarantines_without_retrying() {
        let js = jobs(3);
        let calls = AtomicUsize::new(0);
        let sup = Supervision {
            max_retries: 3,
            backoff_base_us: 0,
            job_deadline_us: Some(1_000_000),
            ..Supervision::default()
        };
        let report = run_supervised(&no_cache(2), &sup, &js, None, |j, _, ctx| {
            calls.fetch_add(1, Ordering::SeqCst);
            // Seed 1 simulates 2 s against a 1 s budget.
            let target = if j.seed == 1 { 2.0 } else { 0.5 };
            ctx.charge_sim_to_secs(target)?;
            Ok(Val(j.seed as f64))
        });
        assert_eq!(report.manifest.failed, 1);
        assert_eq!(report.manifest.failures.deadlines, 1);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            3,
            "deadline did not consume retries: 2 clean jobs + 1 single overrun attempt"
        );
        let err = report.results[1].as_ref().unwrap_err();
        assert!(matches!(err.failure, JobFailure::Deadline { .. }), "{err}");
    }

    #[test]
    fn corrupt_cache_entry_heals_and_is_reported() {
        let dir = std::env::temp_dir().join(format!("liteworp-sup-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            threads: 2,
            cache: Some(ResultCache::new(&dir)),
            code_version: "sup-heal-v1".into(),
        };
        let js = jobs(4);
        let exec = |j: &JobSpec, _: u64, _: &JobContext| Ok(Val(j.seed as f64 * 3.0));
        let first = run_supervised(&cfg, &Supervision::default(), &js, None, exec);
        assert_eq!(first.manifest.cache_misses, 4);

        // Flip a byte in job 2's entry without breaking its JSON shape.
        let key = ResultCache::key(&js[2].scenario, js[2].seed, &cfg.code_version);
        let path = dir.join(format!("{key:016x}.json"));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("6", "7");
        std::fs::write(&path, tampered).unwrap();

        let second = run_supervised(&cfg, &Supervision::default(), &js, None, exec);
        assert_eq!(second.manifest.cache_hits, 3);
        assert_eq!(second.manifest.cache_misses, 1, "corrupt entry recomputed");
        assert_eq!(second.manifest.failed, 0);
        assert_eq!(second.manifest.failures.cache_corrupt, 1);
        assert_eq!(
            second.manifest.results_digest, first.manifest.results_digest,
            "healed sweep matches the original"
        );
        assert!(dir
            .join(".quarantine")
            .join(format!("{key:016x}.json"))
            .exists());
        // Third run: fully healed, all hits.
        let third = run_supervised(&cfg, &Supervision::default(), &js, None, exec);
        assert_eq!(third.manifest.cache_hits, 4);
        assert!(third.manifest.failures.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_resume_replays_completed_jobs() {
        let dir = std::env::temp_dir().join(format!("liteworp-sup-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("sweep.jsonl");
        let js = jobs(6);
        let executions = AtomicUsize::new(0);
        let exec = |j: &JobSpec, _: u64, _: &JobContext| {
            executions.fetch_add(1, Ordering::SeqCst);
            Ok(Val(j.seed as f64 + 0.5))
        };
        let sup = Supervision {
            journal: Some(journal.clone()),
            ..Supervision::default()
        };
        let full = run_supervised(&no_cache(2), &sup, &js, None, exec);
        assert_eq!(executions.load(Ordering::SeqCst), 6);

        // Simulate a crash after 3 completions: keep header + 3 entries
        // plus a torn partial line.
        let text = std::fs::read_to_string(&journal).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&journal, format!("{}\n{{\"key\":\"00", keep.join("\n"))).unwrap();

        let resume = Supervision {
            journal: Some(journal.clone()),
            resume: true,
            ..Supervision::default()
        };
        let resumed = run_supervised(&no_cache(2), &resume, &js, None, exec);
        assert_eq!(resumed.manifest.journal_hits, 3);
        assert_eq!(resumed.manifest.cache_misses, 3);
        assert_eq!(
            executions.load(Ordering::SeqCst),
            9,
            "only the 3 lost jobs re-executed"
        );
        assert_eq!(
            resumed.manifest.results_digest, full.manifest.results_digest,
            "resumed sweep is byte-identical to the uninterrupted one"
        );
        assert_eq!(resumed.manifest.failures.journal_hits, 3);

        // A third resume replays everything.
        let third = run_supervised(&no_cache(2), &resume, &js, None, exec);
        assert_eq!(third.manifest.journal_hits, 6);
        assert_eq!(executions.load(Ordering::SeqCst), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_against_a_different_sweep_starts_fresh() {
        let dir = std::env::temp_dir().join(format!("liteworp-sup-sweepid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("sweep.jsonl");
        let exec = |j: &JobSpec, _: u64, _: &JobContext| Ok(Val(j.seed as f64));
        let sup = Supervision {
            journal: Some(journal.clone()),
            resume: true,
            ..Supervision::default()
        };
        run_supervised(&no_cache(1), &sup, &jobs(3), None, exec);
        // Different job set: the stale journal must not be replayed.
        let other: Vec<JobSpec> = jobs(3)
            .into_iter()
            .map(|mut j| {
                j.scenario = "different-scenario".into();
                j
            })
            .collect();
        let report = run_supervised(&no_cache(1), &sup, &other, None, exec);
        assert_eq!(report.manifest.journal_hits, 0);
        assert_eq!(report.manifest.cache_misses, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_failures_block_serializes() {
        let js = jobs(3);
        let hook = Transient {
            targets: vec![0],
            faulty: 9,
        };
        let sup = Supervision {
            max_retries: 1,
            backoff_base_us: 0,
            ..Supervision::default()
        };
        let report = run_supervised(&no_cache(2), &sup, &js, Some(&hook), |j, _, _| {
            Ok(Val(j.seed as f64))
        });
        let json = report.manifest.to_json();
        let failures = json.get("failures").expect("failures block");
        assert_eq!(failures.get("io").and_then(Json::as_u64), Some(1));
        assert_eq!(
            failures
                .get("quarantined")
                .and_then(Json::as_arr)
                .map(|a| a.len()),
            Some(1)
        );
        assert!(json.get("results_digest").is_some());
        let line = report.manifest.summary_line();
        assert!(line.contains("digest"), "{line}");
        assert!(line.contains("1 quarantined"), "{line}");
    }
}
