//! Write-ahead sweep journal: crash-resumable record of job completion.
//!
//! A sweep journal is a JSONL file. The first line is a header binding the
//! journal to one exact sweep (a hash of every job's cache key plus the
//! code version); every following line records one finished job — its
//! key, label, seed, retry count, and either the full result value or the
//! failure that quarantined it. Appends are flushed and fsync'd, so a
//! `kill -9` loses at most the job that was being written.
//!
//! On [`SweepJournal::resume`] the file is replayed: a torn or corrupt
//! tail (the partially written last line of a crash) is detected,
//! reported, and truncated away rather than parsed, and the recovered
//! entries let the supervisor skip exactly the jobs that already
//! finished. Because result values are embedded, resume works even with
//! the result cache disabled, and a resumed sweep merges to byte-identical
//! aggregates (JSON round-trips are exact).

use crate::cache::{atomic_write, fnv64};
use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// First header field, guarding against feeding some other JSONL file in.
pub const JOURNAL_MAGIC: &str = "liteworp-sweep-journal";

/// On-disk format version.
pub const JOURNAL_VERSION: u64 = 1;

/// The sweep identity a journal is bound to: a hash of the code version
/// and every job's cache key, in job order. Resuming with a different job
/// set, scenario, or code version is rejected instead of silently merging
/// unrelated results.
pub fn sweep_id(keys: &[u64], code_version: &str) -> u64 {
    let mut bytes = Vec::with_capacity(code_version.len() + keys.len() * 9);
    bytes.extend_from_slice(code_version.as_bytes());
    for k in keys {
        bytes.push(0);
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    fnv64(&bytes)
}

/// How a journaled job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalStatus {
    /// The job produced a result (embedded in the entry).
    Done,
    /// The job was quarantined after exhausting its retries.
    Failed,
}

impl JournalStatus {
    fn as_str(self) -> &'static str {
        match self {
            JournalStatus::Done => "done",
            JournalStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<JournalStatus> {
        match s {
            "done" => Some(JournalStatus::Done),
            "failed" => Some(JournalStatus::Failed),
            _ => None,
        }
    }
}

/// One journaled job completion.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The job's cache key (unique per job within a sweep).
    pub key: u64,
    /// The job's label, for humans reading the journal.
    pub label: String,
    /// Seed index of the job.
    pub seed: u64,
    /// Retries the job needed before this outcome.
    pub retries: u32,
    /// Whether the job finished or was quarantined.
    pub status: JournalStatus,
    /// The result value (present iff `status` is [`JournalStatus::Done`]).
    pub value: Option<Json>,
    /// The serialized failure (present iff `status` is
    /// [`JournalStatus::Failed`]).
    pub failure: Option<Json>,
}

impl JournalEntry {
    /// A completion entry carrying the job's result.
    pub fn done(key: u64, label: &str, seed: u64, retries: u32, value: Json) -> JournalEntry {
        JournalEntry {
            key,
            label: label.to_string(),
            seed,
            retries,
            status: JournalStatus::Done,
            value: Some(value),
            failure: None,
        }
    }

    /// A quarantine entry carrying the serialized failure.
    pub fn failed(key: u64, label: &str, seed: u64, retries: u32, failure: Json) -> JournalEntry {
        JournalEntry {
            key,
            label: label.to_string(),
            seed,
            retries,
            status: JournalStatus::Failed,
            value: None,
            failure: Some(failure),
        }
    }

    /// Serializes to one JSONL line's value.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("key", Json::from(format!("{:016x}", self.key))),
            ("label", Json::from(self.label.clone())),
            ("seed", Json::from(self.seed)),
            ("retries", Json::from(self.retries as u64)),
            ("status", Json::from(self.status.as_str())),
            ("value", self.value.clone().unwrap_or(Json::Null)),
            ("failure", self.failure.clone().unwrap_or(Json::Null)),
        ])
    }

    /// Parses an entry back; `None` marks a corrupt line.
    pub fn from_json(json: &Json) -> Option<JournalEntry> {
        let key = u64::from_str_radix(json.get("key")?.as_str()?, 16).ok()?;
        let status = JournalStatus::parse(json.get("status")?.as_str()?)?;
        let field = |name: &str| match json.get(name) {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.clone()),
        };
        let (value, failure) = (field("value"), field("failure"));
        match status {
            JournalStatus::Done if value.is_none() => return None,
            JournalStatus::Failed if failure.is_none() => return None,
            _ => {}
        }
        Some(JournalEntry {
            key,
            label: json.get("label")?.as_str()?.to_string(),
            seed: json.get("seed")?.as_u64()?,
            retries: json.get("retries")?.as_u64()? as u32,
            status,
            value,
            failure,
        })
    }
}

/// Why a journal could not be opened for resume.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error reading or rewriting the journal.
    Io(io::Error),
    /// The file is not a journal, is from a different format version, or
    /// records a different sweep.
    Header(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Header(m) => write!(f, "journal header mismatch: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`SweepJournal::resume`] recovered.
#[derive(Debug)]
pub struct Recovered {
    /// Last recorded outcome per job key (later lines win, so a job that
    /// failed in one run and succeeded in a resume reads as done).
    pub entries: BTreeMap<u64, JournalEntry>,
    /// Bytes of torn or corrupt tail that were truncated away.
    pub torn_bytes: usize,
}

/// An open, appendable sweep journal.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: File,
}

impl SweepJournal {
    fn header_line(sweep_id: u64, jobs: usize) -> String {
        let header = Json::object([
            ("magic", Json::from(JOURNAL_MAGIC)),
            ("version", Json::from(JOURNAL_VERSION)),
            ("sweep", Json::from(format!("{sweep_id:016x}"))),
            ("jobs", Json::from(jobs)),
        ]);
        header.dump() + "\n"
    }

    /// Creates a fresh journal for a sweep of `jobs` jobs, replacing any
    /// existing file atomically (temp file + rename), then reopens it for
    /// fsync'd appends.
    pub fn create(path: &Path, sweep_id: u64, jobs: usize) -> io::Result<SweepJournal> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        atomic_write(path, Self::header_line(sweep_id, jobs).as_bytes())?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(SweepJournal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Reopens an existing journal, verifying it records exactly this
    /// sweep, and replays its entries.
    ///
    /// A torn tail — the half-written last line a crash leaves behind, or
    /// any corrupt suffix — ends the replay: everything after the last
    /// fully parsed line is truncated from the file so appends resume from
    /// a clean boundary. The valid prefix is never discarded.
    pub fn resume(
        path: &Path,
        sweep_id: u64,
        jobs: usize,
    ) -> Result<(SweepJournal, Recovered), JournalError> {
        let text = fs::read_to_string(path)?;
        let mut good_bytes = 0usize;
        let mut lines = text.split_inclusive('\n');
        let header_line = lines
            .next()
            .filter(|l| l.ends_with('\n'))
            .ok_or_else(|| JournalError::Header("empty or truncated header".into()))?;
        let header = Json::parse(header_line.trim_end())
            .map_err(|e| JournalError::Header(format!("unparsable header: {e}")))?;
        if header.get("magic").and_then(Json::as_str) != Some(JOURNAL_MAGIC) {
            return Err(JournalError::Header("not a sweep journal".into()));
        }
        if header.get("version").and_then(Json::as_u64) != Some(JOURNAL_VERSION) {
            return Err(JournalError::Header("unsupported journal version".into()));
        }
        let recorded = header
            .get("sweep")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| JournalError::Header("missing sweep id".into()))?;
        if recorded != sweep_id {
            return Err(JournalError::Header(format!(
                "journal records sweep {recorded:016x}, this run is {sweep_id:016x} \
                 (different jobs, scenario, or code version)"
            )));
        }
        if header.get("jobs").and_then(Json::as_u64) != Some(jobs as u64) {
            return Err(JournalError::Header("job count changed".into()));
        }
        good_bytes += header_line.len();

        let mut entries = BTreeMap::new();
        for line in lines {
            if !line.ends_with('\n') {
                break; // torn final line: the crash interrupted this write
            }
            let Some(entry) = Json::parse(line.trim_end())
                .ok()
                .as_ref()
                .and_then(JournalEntry::from_json)
            else {
                break; // corrupt line: stop replay, truncate the rest
            };
            entries.insert(entry.key, entry);
            good_bytes += line.len();
        }
        let torn_bytes = text.len() - good_bytes;
        if torn_bytes > 0 {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(good_bytes as u64)?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            SweepJournal {
                path: path.to_path_buf(),
                file,
            },
            Recovered {
                entries,
                torn_bytes,
            },
        ))
    }

    /// Appends one entry, flushed and fsync'd before returning, so a
    /// subsequent crash cannot lose it.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let line = entry.to_json().dump() + "\n";
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "liteworp-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("sweep.jsonl")
    }

    fn entry(key: u64, seed: u64) -> JournalEntry {
        JournalEntry::done(
            key,
            "cell",
            seed,
            0,
            Json::object([("v", Json::from(seed as f64 * 1.5))]),
        )
    }

    #[test]
    fn sweep_id_is_sensitive_to_keys_and_version() {
        let a = sweep_id(&[1, 2, 3], "v1");
        assert_eq!(a, sweep_id(&[1, 2, 3], "v1"));
        assert_ne!(a, sweep_id(&[1, 2], "v1"));
        assert_ne!(a, sweep_id(&[3, 2, 1], "v1"), "order matters");
        assert_ne!(a, sweep_id(&[1, 2, 3], "v2"));
    }

    #[test]
    fn entry_round_trips() {
        let e = entry(0xdead_beef, 7);
        let parsed = Json::parse(&e.to_json().dump()).unwrap();
        assert_eq!(JournalEntry::from_json(&parsed), Some(e));
        let f = JournalEntry::failed(1, "bad", 2, 3, Json::from("panic: boom"));
        let parsed = Json::parse(&f.to_json().dump()).unwrap();
        assert_eq!(JournalEntry::from_json(&parsed), Some(f));
    }

    #[test]
    fn status_value_consistency_is_enforced() {
        // A done entry whose value is null is corrupt, not half-trusted.
        let mut e = entry(1, 1);
        e.value = None;
        let parsed = Json::parse(&e.to_json().dump()).unwrap();
        assert_eq!(JournalEntry::from_json(&parsed), None);
    }

    #[test]
    fn create_append_resume_round_trip() {
        let path = tempfile("roundtrip");
        let id = sweep_id(&[10, 11, 12], "v");
        let mut j = SweepJournal::create(&path, id, 3).unwrap();
        j.append(&entry(10, 0)).unwrap();
        j.append(&entry(11, 1)).unwrap();
        drop(j);
        let (_, rec) = SweepJournal::resume(&path, id, 3).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[&10], entry(10, 0));
        assert_eq!(rec.entries[&11], entry(11, 1));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_not_parsed() {
        let path = tempfile("torn");
        let id = sweep_id(&[1, 2], "v");
        let mut j = SweepJournal::create(&path, id, 2).unwrap();
        j.append(&entry(1, 0)).unwrap();
        drop(j);
        // Simulate a crash mid-append: a partial line with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"key\":\"0000").unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();
        let (mut j, rec) = SweepJournal::resume(&path, id, 2).unwrap();
        assert_eq!(rec.entries.len(), 1, "only the complete entry survives");
        assert_eq!(rec.torn_bytes, 12);
        assert!(fs::metadata(&path).unwrap().len() < before, "tail removed");
        // Appending after recovery lands on a clean line boundary.
        j.append(&entry(2, 1)).unwrap();
        drop(j);
        let (_, rec) = SweepJournal::resume(&path, id, 2).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.torn_bytes, 0);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn later_entries_override_earlier_ones() {
        let path = tempfile("override");
        let id = sweep_id(&[5], "v");
        let mut j = SweepJournal::create(&path, id, 1).unwrap();
        j.append(&JournalEntry::failed(5, "cell", 0, 2, Json::from("io")))
            .unwrap();
        j.append(&entry(5, 0)).unwrap();
        drop(j);
        let (_, rec) = SweepJournal::resume(&path, id, 1).unwrap();
        assert_eq!(rec.entries[&5].status, JournalStatus::Done);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn mismatched_sweep_is_rejected() {
        let path = tempfile("mismatch");
        let id = sweep_id(&[1], "v");
        SweepJournal::create(&path, id, 1).unwrap();
        let other = sweep_id(&[2], "v");
        assert!(matches!(
            SweepJournal::resume(&path, other, 1),
            Err(JournalError::Header(_))
        ));
        assert!(matches!(
            SweepJournal::resume(&path, id, 9),
            Err(JournalError::Header(_))
        ));
        // A non-journal file is rejected, not replayed.
        fs::write(&path, "{\"whatever\": 1}\n").unwrap();
        assert!(matches!(
            SweepJournal::resume(&path, id, 1),
            Err(JournalError::Header(_))
        ));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn fresh_create_replaces_stale_journal() {
        let path = tempfile("replace");
        let id = sweep_id(&[1], "v");
        let mut j = SweepJournal::create(&path, id, 1).unwrap();
        j.append(&entry(1, 0)).unwrap();
        drop(j);
        SweepJournal::create(&path, id, 1).unwrap();
        let (_, rec) = SweepJournal::resume(&path, id, 1).unwrap();
        assert!(rec.entries.is_empty(), "create starts over");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
