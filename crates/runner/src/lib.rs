//! `liteworp-runner`: parallel, deterministic, cache-aware experiment
//! execution for the LITEWORP reproduction.
//!
//! Every headline result of the paper replays tens of independent seeded
//! simulations. This crate turns that embarrassingly parallel workload
//! into an execution engine with three guarantees:
//!
//! 1. **Determinism** — each job's RNG seed is derived purely from the
//!    job's identity (`(scenario_hash, seed)`, mixed with splitmix64), so
//!    aggregates are byte-identical at any thread count ([`engine`],
//!    [`rng`]).
//! 2. **Resumability** — job results are stored in a content-addressed
//!    on-disk cache keyed by `fnv64(scenario + seed + code_version)`;
//!    re-running a sweep only executes missing or changed cells
//!    ([`cache`]).
//! 3. **Observability** — every run produces a [`engine::Manifest`]
//!    recording per-job wall-clock, cache hit/miss counts, and thread
//!    utilization.
//! 4. **Survivability** — every job runs under a supervision envelope
//!    (typed [`supervisor::JobFailure`] taxonomy, deterministic bounded
//!    retries, sim-time deadlines), sweeps journal completions to an
//!    fsync'd write-ahead log for crash resume ([`journal`]), and cache
//!    entries carry checksums so corruption is quarantined and
//!    recomputed, never parsed ([`cache`]).
//!
//! The crate is dependency-free (std only) and also hosts the workspace's
//! shared deterministic RNG ([`rng`]) and a minimal JSON reader/writer
//! ([`json`]) so no crate in the default build needs the network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod journal;
pub mod json;
pub mod pool;
pub mod rng;
pub mod service;
pub mod stats;
pub mod supervisor;
pub mod task_pool;

pub use cache::{CacheLoad, ResultCache};
pub use engine::{run_jobs, CacheValue, JobError, JobSpec, Manifest, RunConfig, RunReport};
pub use json::Json;
pub use rng::{Pcg32, Rng};
pub use service::{JobProgress, ProgressObserver, SweepEngine, SweepExec};
pub use stats::{Percentiles, Summary};
pub use supervisor::{
    run_supervised, FailureReport, JobContext, JobFailure, JobFaultHook, Supervision,
};
pub use task_pool::TaskPool;
