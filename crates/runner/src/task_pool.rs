//! A persistent std-only thread pool for long-lived services.
//!
//! [`pool::run`](crate::pool::run) spawns scoped workers per batch and
//! joins them before returning — perfect for one-shot bins, wrong for a
//! daemon that serves many sweeps over its lifetime. [`TaskPool`] keeps
//! `n` workers alive for the pool's whole lifetime and feeds them boxed
//! closures through a shared queue, so a warm engine can multiplex jobs
//! from many concurrent requests onto one set of threads.
//!
//! Tasks are `'static` (they outlive the submitting call); each task
//! receives the index of the worker running it. Panicking tasks are
//! caught so a bad job never kills a worker. Dropping the pool signals
//! shutdown and joins every worker; tasks still queued at that point are
//! dropped unrun, so owners must drain their own completion counters
//! before letting the pool go.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work: called once with the running worker's index.
type Task = Box<dyn FnOnce(usize) + Send>;

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

/// A fixed-size pool of persistent workers draining a shared task queue.
pub struct TaskPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `threads` workers (clamped to at least 1) that live until
    /// the pool is dropped.
    pub fn new(threads: usize) -> TaskPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(w, &shared))
            })
            .collect();
        TaskPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one task; some worker will run it with its own index.
    /// Tasks submitted after shutdown began are silently dropped (the
    /// pool is already on its way down; owners gate their own submits).
    pub fn spawn(&self, task: impl FnOnce(usize) + Send + 'static) {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !queue.shutdown {
            queue.tasks.push_back(Box::new(task));
            drop(queue);
            self.shared.available.notify_one();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.shutdown = true;
            queue.tasks.clear();
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A panicking task must not take its worker down with it; the
        // submitter observes the panic through its own completion slot.
        let _ = catch_unwind(AssertUnwindSafe(|| task(worker)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_spawned_task() {
        let pool = TaskPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            let gate = Arc::clone(&gate);
            pool.spawn(move |w| {
                assert!(w < 4);
                done.fetch_add(1, Ordering::SeqCst);
                let (count, cv) = &*gate;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        let (count, cv) = &*gate;
        let mut finished = count.lock().unwrap();
        while *finished < 100 {
            finished = cv.wait(finished).unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = TaskPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        pool.spawn(|_| panic!("task boom"));
        let after = Arc::clone(&gate);
        pool.spawn(move |_| {
            let (done, cv) = &*after;
            *done.lock().unwrap() = true;
            cv.notify_all();
        });
        let (done, cv) = &*gate;
        let mut ran = done.lock().unwrap();
        while !*ran {
            ran = cv.wait(ran).unwrap();
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = TaskPool::new(2);
        assert_eq!(pool.threads(), 2);
        drop(pool); // must not hang
    }
}
