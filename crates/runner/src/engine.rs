//! The execution engine: describes simulation jobs, runs them on the
//! [`pool`](crate::pool) with the [`cache`](crate::cache) in front, and
//! reports a [`Manifest`] of what happened.
//!
//! Execution itself lives in [`crate::supervisor`]: [`run_jobs`] is the
//! unsupervised convenience entry point (no retries, no deadline, no
//! journal), equivalent to [`crate::supervisor::run_supervised`] with the
//! default [`crate::supervisor::Supervision`] policy.
//!
//! # Determinism contract
//!
//! A job is identified by `(scenario, seed)`. Its RNG seed is
//! [`JobSpec::derived_seed`] — a pure function of the scenario hash and
//! the seed index — and results are returned in job order, so any
//! aggregate computed over them is byte-identical at every thread count,
//! with or without cache hits, journal replays, or retries. The
//! [`Manifest::results_digest`] field condenses that contract into one
//! comparable number.

use crate::cache::{fnv64, ResultCache};
use crate::json::Json;
use crate::pool;
use crate::rng::derive_seed;
use crate::stats::Percentiles;
use crate::supervisor::{run_supervised, FailureReport, JobFailure, Supervision};

/// One unit of work: a scenario cell at one seed index.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label for manifests and error reports
    /// (e.g. `"fig9 m=2 liteworp"`).
    pub label: String,
    /// Canonical description of the full scenario configuration. Equal
    /// strings mean "the same experiment cell"; the cache and the per-job
    /// RNG both key off it.
    pub scenario: String,
    /// Seed index within the cell (`0..cfg.seeds`).
    pub seed: u64,
}

impl JobSpec {
    /// The 64-bit hash of the scenario description.
    pub fn scenario_hash(&self) -> u64 {
        fnv64(self.scenario.as_bytes())
    }

    /// The RNG seed this job must simulate with: splitmix-derived from
    /// `(scenario_hash, seed)`, independent of scheduling.
    pub fn derived_seed(&self) -> u64 {
        derive_seed(self.scenario_hash(), self.seed)
    }
}

/// Values that can round-trip through the result cache.
pub trait CacheValue: Sized {
    /// Serializes for the cache and result files.
    fn to_json(&self) -> Json;
    /// Deserializes a cached entry; `None` marks it stale/corrupt (it is
    /// then recomputed, not trusted).
    fn from_json(json: &Json) -> Option<Self>;
}

/// How to execute a batch.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads (`pool::resolve_threads` turns `--jobs` /
    /// `LITEWORP_JOBS` / core count into this).
    pub threads: usize,
    /// Result cache, or `None` to always execute.
    pub cache: Option<ResultCache>,
    /// Version string folded into every cache key; bump it when simulator
    /// behavior changes so stale results are never reused.
    pub code_version: String,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: pool::resolve_threads(None),
            cache: None,
            code_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

/// A job that was quarantined: it produced no result even after its
/// retry budget.
#[derive(Debug, Clone)]
pub struct JobError {
    /// The job's label.
    pub label: String,
    /// Seed index of the failing job.
    pub seed: u64,
    /// The derived RNG seed the failing attempt ran with — together with
    /// the label this is the reproducer for engine-level failures.
    pub derived_seed: u64,
    /// Why the job failed.
    pub failure: JobFailure,
}

impl JobError {
    /// The failure rendered as text (class plus detail).
    pub fn message(&self) -> String {
        self.failure.to_string()
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job '{}' (seed {}) quarantined: {} [reproduce: derived_seed={:#018x}]",
            self.label, self.seed, self.failure, self.derived_seed
        )
    }
}

/// Timing and provenance of one executed job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's label.
    pub label: String,
    /// Seed index.
    pub seed: u64,
    /// Cache key used for this job.
    pub key: u64,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// Whether the result was replayed from the resume journal.
    pub journaled: bool,
    /// Retries the job needed (0 = first attempt sufficed).
    pub retries: u32,
    /// Failure class when the job was quarantined, `None` on success.
    pub failure: Option<&'static str>,
    /// Whether the job failed.
    pub failed: bool,
    /// Wall-clock of this job in milliseconds.
    pub wall_ms: f64,
    /// Time the job waited in the pool queue, in milliseconds.
    pub queue_wait_ms: f64,
    /// Worker thread that ran it.
    pub worker: usize,
}

/// What a run did: per-job wall-clock, cache hit/miss counts, thread
/// utilization, and the failure/retry accounting of the supervisor.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Worker threads used.
    pub threads: usize,
    /// Total jobs in the batch.
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs replayed from the resume journal.
    pub journal_hits: usize,
    /// Jobs that executed a simulation.
    pub cache_misses: usize,
    /// Jobs quarantined after exhausting their retries.
    pub failed: usize,
    /// Wall-clock of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Busy-fraction per worker over the batch.
    pub utilization: Vec<f64>,
    /// Per-job wall-clock percentiles (ms), over every job.
    pub job_duration_ms: Option<Percentiles>,
    /// Pool queue-wait percentiles (ms), over every job.
    pub queue_wait_ms: Option<Percentiles>,
    /// Wall-clock percentiles (ms) of jobs answered from the cache.
    pub cache_hit_ms: Option<Percentiles>,
    /// Wall-clock percentiles (ms) of jobs that executed a simulation.
    pub cache_miss_ms: Option<Percentiles>,
    /// Order-sensitive FNV digest of the batch results; equal digests
    /// mean byte-identical results (see
    /// [`crate::supervisor::digest_results`]).
    pub results_digest: u64,
    /// Failure classes, retry histogram, and quarantined job ids.
    pub failures: FailureReport,
    /// One record per job, in job order.
    pub per_job: Vec<JobRecord>,
}

impl Manifest {
    /// The one-line summary the experiment binaries print.
    pub fn summary_line(&self) -> String {
        let util = if self.utilization.is_empty() {
            0.0
        } else {
            self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
        };
        let mut line = format!(
            "runner: {} jobs on {} threads in {:.2} s ({} cache hits, {} executed, {} failed, {:.0}% utilization) digest={:016x}",
            self.jobs,
            self.threads,
            self.wall_ms / 1000.0,
            self.cache_hits,
            self.cache_misses,
            self.failed,
            util * 100.0,
            self.results_digest
        );
        if self.journal_hits > 0 {
            line.push_str(&format!(", {} journal hits", self.journal_hits));
        }
        let retried: u64 = self.failures.retry_histogram.values().sum();
        if retried > 0 {
            line.push_str(&format!(", {retried} retried"));
        }
        if !self.failures.quarantined.is_empty() {
            line.push_str(&format!(
                ", {} quarantined",
                self.failures.quarantined.len()
            ));
        }
        line
    }

    /// Full manifest as JSON (for `results/` provenance files).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("threads", Json::from(self.threads)),
            ("jobs", Json::from(self.jobs)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("journal_hits", Json::from(self.journal_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("failed", Json::from(self.failed)),
            ("wall_ms", Json::from(self.wall_ms)),
            (
                "results_digest",
                Json::from(format!("{:016x}", self.results_digest)),
            ),
            (
                "utilization",
                Json::Arr(self.utilization.iter().map(|&u| Json::from(u)).collect()),
            ),
            ("failures", self.failures.to_json()),
            (
                "profile",
                Json::object([
                    (
                        "job_duration_ms",
                        self.job_duration_ms
                            .as_ref()
                            .map_or(Json::Null, Percentiles::to_json),
                    ),
                    (
                        "queue_wait_ms",
                        self.queue_wait_ms
                            .as_ref()
                            .map_or(Json::Null, Percentiles::to_json),
                    ),
                    (
                        "cache_hit_ms",
                        self.cache_hit_ms
                            .as_ref()
                            .map_or(Json::Null, Percentiles::to_json),
                    ),
                    (
                        "cache_miss_ms",
                        self.cache_miss_ms
                            .as_ref()
                            .map_or(Json::Null, Percentiles::to_json),
                    ),
                ]),
            ),
            (
                "per_job",
                Json::Arr(
                    self.per_job
                        .iter()
                        .map(|j| {
                            Json::object([
                                ("label", Json::from(j.label.clone())),
                                ("seed", Json::from(j.seed)),
                                ("key", Json::from(format!("{:016x}", j.key))),
                                ("cached", Json::from(j.cached)),
                                ("journaled", Json::from(j.journaled)),
                                ("retries", Json::from(j.retries as u64)),
                                ("failure", j.failure.map_or(Json::Null, Json::from)),
                                ("failed", Json::from(j.failed)),
                                ("wall_ms", Json::from(j.wall_ms)),
                                ("queue_wait_ms", Json::from(j.queue_wait_ms)),
                                ("worker", Json::from(j.worker)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A finished batch: per-job results in job order, plus the manifest.
#[derive(Debug)]
pub struct RunReport<T> {
    /// One entry per job, in the order the jobs were given.
    pub results: Vec<Result<T, JobError>>,
    /// What happened.
    pub manifest: Manifest,
}

impl<T> RunReport<T> {
    /// The successful results in job order (failed jobs skipped).
    pub fn successes(&self) -> impl Iterator<Item = &T> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }
}

/// Executes a batch of jobs: cache lookup first, then the simulation via
/// `exec(job, derived_seed)` on the thread pool, storing fresh results
/// back into the cache.
///
/// This is the unsupervised entry point — no retries, deadline, or
/// journal; a panic fails its job immediately. Sweeps that want those use
/// [`run_supervised`] directly.
pub fn run_jobs<T, F>(cfg: &RunConfig, jobs: &[JobSpec], exec: F) -> RunReport<T>
where
    T: CacheValue + Send,
    F: Fn(&JobSpec, u64) -> T + Sync,
{
    run_supervised(
        cfg,
        &Supervision::default(),
        jobs,
        None,
        |job, derived, _| Ok(exec(job, derived)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct Val(f64);

    impl CacheValue for Val {
        fn to_json(&self) -> Json {
            Json::object([("v", Json::from(self.0))])
        }
        fn from_json(json: &Json) -> Option<Self> {
            json.get("v")?.as_f64().map(Val)
        }
    }

    fn jobs(n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|seed| JobSpec {
                label: format!("cell seed={seed}"),
                scenario: "test-scenario".into(),
                seed,
            })
            .collect()
    }

    #[test]
    fn derived_seeds_are_distinct_per_job() {
        let js = jobs(10);
        let mut seen = std::collections::BTreeSet::new();
        for j in &js {
            assert!(seen.insert(j.derived_seed()));
        }
    }

    #[test]
    fn results_arrive_in_job_order_at_any_thread_count() {
        let js = jobs(16);
        let exec = |j: &JobSpec, derived: u64| Val((j.seed as f64) + (derived % 7) as f64);
        let one = run_jobs(
            &RunConfig {
                threads: 1,
                ..RunConfig::default()
            },
            &js,
            exec,
        );
        let four = run_jobs(
            &RunConfig {
                threads: 4,
                ..RunConfig::default()
            },
            &js,
            exec,
        );
        let a: Vec<f64> = one.successes().map(|v| v.0).collect();
        let b: Vec<f64> = four.successes().map(|v| v.0).collect();
        assert_eq!(a, b);
        assert_eq!(one.manifest.cache_misses, 16, "no cache configured");
        assert_eq!(
            one.manifest.results_digest, four.manifest.results_digest,
            "digest is thread-count independent"
        );
    }

    #[test]
    fn cache_round_trip_skips_execution() {
        let dir = std::env::temp_dir().join(format!("liteworp-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            threads: 2,
            cache: Some(ResultCache::new(&dir)),
            code_version: "test-v1".into(),
        };
        let executions = AtomicUsize::new(0);
        let exec = |j: &JobSpec, _: u64| {
            executions.fetch_add(1, Ordering::SeqCst);
            Val(j.seed as f64 * 2.0)
        };
        let first = run_jobs(&cfg, &jobs(8), exec);
        assert_eq!(first.manifest.cache_hits, 0);
        assert_eq!(executions.load(Ordering::SeqCst), 8);
        let second = run_jobs(&cfg, &jobs(8), exec);
        assert_eq!(second.manifest.cache_hits, 8, "all hits on re-run");
        assert_eq!(executions.load(Ordering::SeqCst), 8, "no re-execution");
        let a: Vec<f64> = first.successes().map(|v| v.0).collect();
        let b: Vec<f64> = second.successes().map(|v| v.0).collect();
        assert_eq!(a, b, "cached results identical to fresh ones");
        assert_eq!(
            first.manifest.results_digest,
            second.manifest.results_digest
        );
        // A different code version invalidates every entry.
        let bumped = RunConfig {
            code_version: "test-v2".into(),
            ..cfg
        };
        let third = run_jobs(&bumped, &jobs(8), exec);
        assert_eq!(third.manifest.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let js = jobs(6);
        let report = run_jobs(
            &RunConfig {
                threads: 3,
                ..RunConfig::default()
            },
            &js,
            |j, _| {
                if j.seed == 2 {
                    panic!("scenario build failed");
                }
                Val(1.0)
            },
        );
        assert_eq!(report.manifest.failed, 1);
        assert_eq!(report.successes().count(), 5);
        let err = report.results[2].as_ref().unwrap_err();
        assert!(err.message().contains("scenario build failed"), "{err}");
        assert_eq!(err.failure.class(), "panic");
        assert_eq!(err.derived_seed, js[2].derived_seed());
        let rendered = err.to_string();
        assert!(rendered.contains("derived_seed="), "{rendered}");
        assert!(report.manifest.per_job[2].failed);
        assert_eq!(report.manifest.per_job[2].failure, Some("panic"));
        assert_eq!(report.manifest.failures.panics, 1);
    }

    #[test]
    fn manifest_serializes() {
        let report = run_jobs(&RunConfig::default(), &jobs(3), |j, _| Val(j.seed as f64));
        let json = report.manifest.to_json();
        assert_eq!(json.get("jobs").and_then(Json::as_u64), Some(3));
        assert_eq!(
            json.get("per_job").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert!(report.manifest.summary_line().contains("3 jobs"));
        assert_eq!(
            json.get("results_digest").and_then(Json::as_str),
            Some(format!("{:016x}", report.manifest.results_digest).as_str())
        );
        let failures = json.get("failures").expect("failures block");
        assert_eq!(failures.get("panics").and_then(Json::as_u64), Some(0));
        assert!(report.manifest.failures.is_empty());

        // Profiling: duration and queue-wait percentiles are present and
        // consistent with the per-job records.
        let profile = json.get("profile").expect("profile object");
        let p50 = profile
            .get("job_duration_ms")
            .and_then(|p| p.get("p50"))
            .and_then(Json::as_f64)
            .expect("duration p50");
        let durations = report.manifest.job_duration_ms.expect("duration profile");
        assert_eq!(durations.n, 3);
        assert_eq!(durations.p50, p50);
        assert!(durations.p50 <= durations.p95 && durations.p95 <= durations.max);
        let qw = report.manifest.queue_wait_ms.expect("queue-wait profile");
        assert_eq!(qw.n, 3);
        assert!(qw.max <= report.manifest.wall_ms);
        // No cache configured: every job is a miss, no hit profile.
        assert!(report.manifest.cache_hit_ms.is_none());
        assert_eq!(report.manifest.cache_miss_ms.expect("miss profile").n, 3);
        for j in json.get("per_job").and_then(Json::as_arr).unwrap() {
            assert!(j.get("queue_wait_ms").and_then(Json::as_f64).is_some());
            assert_eq!(j.get("retries").and_then(Json::as_u64), Some(0));
        }
    }
}
