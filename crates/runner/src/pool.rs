//! A std-only work-stealing thread pool for batch job execution.
//!
//! Jobs (identified by index) start on a shared injector queue; each
//! worker drains a small local deque, refills it in batches from the
//! injector, and steals single jobs from the back of a sibling's deque
//! when both are empty. Workers are scoped threads, so borrowed job data
//! needs no `'static` bound.
//!
//! Panicking jobs are caught per job and reported as errors; the pool and
//! the remaining jobs keep running.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How one job ended.
#[derive(Debug, Clone)]
pub struct JobRun<T> {
    /// The job's output, or the panic message if it panicked.
    pub result: Result<T, String>,
    /// Wall-clock spent executing the job.
    pub elapsed: Duration,
    /// Time the job spent queued before a worker picked it up (measured
    /// from batch start; job order approximates submission order).
    pub queue_wait: Duration,
    /// Index of the worker thread that ran it.
    pub worker: usize,
}

/// Aggregate timing of one pool invocation.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Number of worker threads used.
    pub threads: usize,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
    /// Busy time per worker (sum of job runtimes on that worker).
    pub busy: Vec<Duration>,
}

impl PoolStats {
    /// Per-worker utilization in `[0, 1]`: busy time / batch wall-clock.
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.wall.as_secs_f64().max(1e-9);
        self.busy
            .iter()
            .map(|b| (b.as_secs_f64() / wall).min(1.0))
            .collect()
    }
}

/// Resolves the worker count: an explicit request, else the
/// `LITEWORP_JOBS` environment variable, else all available cores.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var("LITEWORP_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// How many jobs a worker takes from the injector at once: enough to
/// amortize the lock, small enough to leave work for stealing.
fn batch_size(remaining: usize, threads: usize) -> usize {
    (remaining / (threads * 4)).clamp(1, 64)
}

/// Runs `count` jobs on `threads` workers and returns their outcomes in
/// job order, plus pool timing stats.
///
/// `f` is called as `f(job_index)` and may be called from any worker
/// concurrently. Results are written to per-job slots, so output order is
/// independent of scheduling.
pub fn run<T, F>(threads: usize, count: usize, f: F) -> (Vec<JobRun<T>>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count.max(1));
    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..count).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let slots: Vec<Mutex<Option<JobRun<T>>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let busy_nanos: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();

    // lint: allow(D001) wall-clock profiling of host execution, never
    // of simulated behavior; results feed the manifest profile block
    let started = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let injector = &injector;
            let locals = &locals;
            let slots = &slots;
            let busy_nanos = &busy_nanos;
            let f = &f;
            scope.spawn(move || loop {
                let job = next_job(w, injector, locals, threads);
                let Some(job) = job else { break };
                // lint: allow(D001) per-job host wall time for PoolStats only
                let t0 = Instant::now();
                let queue_wait = t0.duration_since(started);
                let result = catch_unwind(AssertUnwindSafe(|| f(job)))
                    .map_err(|payload| format!("job {job}: {}", panic_message(payload)));
                let elapsed = t0.elapsed();
                busy_nanos[w].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                *slots[job].lock().unwrap_or_else(PoisonError::into_inner) = Some(JobRun {
                    result,
                    elapsed,
                    queue_wait,
                    worker: w,
                });
            });
        }
    });

    let stats = PoolStats {
        threads,
        wall: started.elapsed(),
        busy: busy_nanos
            .iter()
            .map(|n| Duration::from_nanos(n.load(Ordering::Relaxed)))
            .collect(),
    };
    let outcomes = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // lint: allow(P002) invariant: every queued job index is
                // popped exactly once and writes its slot; job panics are
                // contained by catch_unwind above
                .expect("every job index was executed exactly once")
        })
        .collect();
    (outcomes, stats)
}

/// Pops this worker's next job: local deque front, else a batch from the
/// injector, else a steal from the back of a sibling's deque.
fn next_job(
    w: usize,
    injector: &Mutex<VecDeque<usize>>,
    locals: &[Mutex<VecDeque<usize>>],
    threads: usize,
) -> Option<usize> {
    if let Some(job) = locals[w]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_front()
    {
        return Some(job);
    }
    {
        let mut inj = injector.lock().unwrap_or_else(PoisonError::into_inner);
        if !inj.is_empty() {
            let take = batch_size(inj.len(), threads);
            // lint: allow(C001) injector→local batch refill holds both queue
            // locks in a fixed order; this file is the registered
            // LOCK_NEST_BOUNDARY seam
            let mut local = locals[w].lock().unwrap_or_else(PoisonError::into_inner);
            for _ in 0..take {
                match inj.pop_front() {
                    Some(job) => local.push_back(job),
                    None => break,
                }
            }
            drop(inj);
            return local.pop_front();
        }
    }
    // Injector dry: steal from the most loaded sibling's back.
    for offset in 1..threads {
        let victim = (w + offset) % threads;
        if let Some(job) = locals[victim]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            return Some(job);
        }
    }
    None
}

/// Extracts the human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_job_exactly_once() {
        let calls = AtomicUsize::new(0);
        let (runs, stats) = run(4, 100, |i| {
            calls.fetch_add(1, Ordering::SeqCst);
            i * 2
        });
        assert_eq!(calls.load(Ordering::SeqCst), 100);
        assert_eq!(runs.len(), 100);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(*r.result.as_ref().unwrap(), i * 2, "slot order preserved");
            assert!(r.worker < stats.threads);
            assert!(
                r.queue_wait <= stats.wall,
                "queue wait is bounded by the batch wall-clock"
            );
        }
    }

    #[test]
    fn single_thread_matches_multi_thread_output() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let (a, _) = run(1, 50, work);
        let (b, _) = run(4, 50, work);
        let va: Vec<u64> = a.into_iter().map(|r| r.result.unwrap()).collect();
        let vb: Vec<u64> = b.into_iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn panicking_job_does_not_sink_the_batch() {
        let (runs, _) = run(3, 10, |i| {
            if i == 4 {
                panic!("boom at {i}");
            }
            i
        });
        assert_eq!(runs.len(), 10);
        for (i, r) in runs.iter().enumerate() {
            if i == 4 {
                let msg = r.result.as_ref().unwrap_err();
                assert!(msg.contains("boom"), "{msg}");
                assert!(msg.contains("job 4"), "panicking job id preserved: {msg}");
            } else {
                assert_eq!(*r.result.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let (runs, stats) = run(4, 0, |_| 1u8);
        assert!(runs.is_empty());
        assert_eq!(stats.threads, 1, "no point spawning idle workers");
    }

    #[test]
    fn more_threads_than_jobs_is_clamped() {
        let (runs, stats) = run(16, 3, |i| i);
        assert_eq!(runs.len(), 3);
        assert_eq!(stats.threads, 3);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn utilization_is_bounded() {
        let (_, stats) = run(2, 20, |i| {
            std::thread::sleep(Duration::from_micros(100 + i as u64));
        });
        for u in stats.utilization() {
            assert!((0.0..=1.0).contains(&u));
        }
    }
}
