//! A minimal JSON value type with a writer and a parser — just enough for
//! the result cache, run manifests, and experiment output, with no
//! external dependency.
//!
//! Objects preserve insertion order so serialized output is deterministic
//! (a requirement for byte-identical aggregates and stable cache files).
//!
//! # Example
//!
//! ```
//! use liteworp_runner::json::Json;
//!
//! let v = Json::object([("x", Json::from(1.5)), ("ok", Json::from(true))]);
//! let text = v.dump();
//! assert_eq!(text, r#"{"x":1.5,"ok":true}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("x").and_then(Json::as_f64), Some(1.5));
//! ```

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each element.
    pub fn array<T: Into<Json>, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer count.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back to the same f64 — lossless round-trips.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// A JSON syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::object([
            ("name", Json::from("fig9")),
            ("ratio", Json::from(0.125)),
            ("count", Json::from(30u64)),
            ("flags", Json::array([true, false])),
            ("nested", Json::object([("none", Json::Null)])),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78, -0.0] {
            let text = Json::Num(x).dump();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::from(30u64).dump(), "30");
        assert_eq!(Json::from(0u64).dump(), "0");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1}";
        let text = Json::from(s).dump();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Json::from(Some(1.5f64)), Json::Num(1.5));
        assert_eq!(Json::from(None::<f64>), Json::Null);
    }
}
