//! Content-addressed on-disk result cache with self-healing entries.
//!
//! Each job result lives in `results/cache/<fnv64(scenario + seed +
//! code_version)>.json`. The key covers the full scenario description and
//! a code-version string, so changing either the configuration or the
//! simulator invalidates exactly the affected cells; re-running a sweep
//! only executes the missing ones, and an interrupted sweep resumes where
//! it stopped.
//!
//! Every entry carries an FNV-1a checksum footer over its payload bytes.
//! [`ResultCache::load_checked`] verifies it on read: an entry that is
//! truncated, bit-flipped, or otherwise corrupt is *quarantined* — moved
//! into `cache/.quarantine/` for post-mortem — and reported as
//! [`CacheLoad::Corrupt`] so the supervisor can transparently recompute
//! it instead of crashing or trusting garbage.

use crate::json::Json;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// 64-bit FNV-1a over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Prefix of the checksum footer line stored after each entry's payload.
const FOOTER_PREFIX: &str = "fnv64:";

/// Monotonic counter making concurrent temp-file names unique within the
/// process (the pool stores distinct keys concurrently, but a shared name
/// per target would still race between threads).
static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: write + fsync a unique temp
/// file in the same directory, then rename it over the target. A crash at
/// any point leaves either the old file or the new one, never a torn mix.
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let tmp = dir.join(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let mut file = File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_data()?;
    drop(file);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// What a checked cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLoad {
    /// A verified entry: checksum matched, payload parsed.
    Hit(Json),
    /// No entry on disk.
    Miss,
    /// The entry failed verification (truncation, bit flip, bad footer).
    /// It has been quarantined; the string says what was wrong.
    Corrupt(String),
}

/// The on-disk cache. Dropping in a different directory (e.g. a tempdir
/// in tests) isolates runs completely.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and lazily creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The conventional location: `results/cache` under the repo root.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// The cache key for a job: `fnv64(scenario + seed + code_version)`.
    pub fn key(scenario: &str, seed: u64, code_version: &str) -> u64 {
        let mut bytes = Vec::with_capacity(scenario.len() + code_version.len() + 16);
        bytes.extend_from_slice(scenario.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(code_version.as_bytes());
        fnv64(&bytes)
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Where corrupt entries are moved for post-mortem inspection.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(".quarantine")
    }

    /// Verifies an entry's bytes: payload line(s), then a
    /// `fnv64:<16 hex>` footer line over the payload bytes.
    fn verify(text: &str) -> Result<Json, String> {
        let stripped = text
            .strip_suffix('\n')
            .ok_or("truncated entry (missing trailing newline)")?;
        let (payload, footer) = stripped
            .rsplit_once('\n')
            .ok_or("missing checksum footer")?;
        let hex = footer
            .strip_prefix(FOOTER_PREFIX)
            .ok_or("malformed checksum footer")?;
        let stored =
            u64::from_str_radix(hex, 16).map_err(|_| "unparsable checksum footer".to_string())?;
        let computed = fnv64(payload.as_bytes());
        if stored != computed {
            return Err(format!(
                "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ));
        }
        Json::parse(payload).map_err(|e| format!("payload unparsable despite valid checksum: {e}"))
    }

    /// Moves a corrupt entry into the quarantine directory (best effort —
    /// verification already failed, so at worst the bad file stays and is
    /// overwritten by the recompute's store).
    fn quarantine(&self, key: u64) {
        let qdir = self.quarantine_dir();
        if fs::create_dir_all(&qdir).is_ok() {
            let _ = fs::rename(self.path(key), qdir.join(format!("{key:016x}.json")));
        }
    }

    /// Loads and verifies a cached result. Corrupt entries (including
    /// pre-checksum legacy entries) are quarantined and reported so the
    /// caller can recompute — garbage is never returned as a hit.
    pub fn load_checked(&self, key: u64) -> CacheLoad {
        let text = match fs::read_to_string(self.path(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLoad::Miss,
            Err(e) => {
                self.quarantine(key);
                return CacheLoad::Corrupt(format!("unreadable entry: {e}"));
            }
        };
        match Self::verify(&text) {
            Ok(json) => CacheLoad::Hit(json),
            Err(reason) => {
                self.quarantine(key);
                CacheLoad::Corrupt(reason)
            }
        }
    }

    /// Loads a cached result, or `None` when absent or corrupt (a corrupt
    /// entry behaves like a miss, after being quarantined).
    pub fn load(&self, key: u64) -> Option<Json> {
        match self.load_checked(key) {
            CacheLoad::Hit(json) => Some(json),
            CacheLoad::Miss | CacheLoad::Corrupt(_) => None,
        }
    }

    /// Stores a result atomically (write + fsync to a temp file, then
    /// rename), with a checksum footer so later truncation or bit rot is
    /// detected on load instead of being parsed as data.
    pub fn store(&self, key: u64, value: &Json) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let payload = value.dump();
        let entry = format!(
            "{payload}\n{FOOTER_PREFIX}{:016x}\n",
            fnv64(payload.as_bytes())
        );
        atomic_write(&self.path(key), entry.as_bytes())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("liteworp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_separates_fields() {
        // "ab" + seed vs "a" + different-bytes must not collide by
        // concatenation ambiguity thanks to separators.
        let a = ResultCache::key("scenario-a", 1, "v1");
        assert_ne!(a, ResultCache::key("scenario-a", 2, "v1"));
        assert_ne!(a, ResultCache::key("scenario-b", 1, "v1"));
        assert_ne!(a, ResultCache::key("scenario-a", 1, "v2"));
        assert_eq!(a, ResultCache::key("scenario-a", 1, "v1"));
    }

    #[test]
    fn store_load_round_trip() {
        let cache = ResultCache::new(tempdir("roundtrip"));
        let key = ResultCache::key("s", 3, "v");
        assert_eq!(cache.load(key), None, "cold cache misses");
        assert_eq!(cache.load_checked(key), CacheLoad::Miss);
        let value = Json::object([("drops", Json::from(17u64))]);
        cache.store(key, &value).unwrap();
        assert_eq!(cache.load(key), Some(value.clone()));
        assert_eq!(cache.load_checked(key), CacheLoad::Hit(value));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = ResultCache::new(tempdir("corrupt"));
        let key = ResultCache::key("s", 4, "v");
        fs::create_dir_all(cache.dir()).unwrap();
        fs::write(cache.dir().join(format!("{key:016x}.json")), "{not json").unwrap();
        assert_eq!(cache.load(key), None);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bit_flip_is_detected_and_quarantined() {
        let cache = ResultCache::new(tempdir("bitflip"));
        let key = ResultCache::key("s", 5, "v");
        cache
            .store(key, &Json::object([("drops", Json::from(17u64))]))
            .unwrap();
        // Flip one payload byte: "17" -> "99" keeps the entry valid JSON,
        // so only the checksum can catch it.
        let path = cache.dir().join(format!("{key:016x}.json"));
        let tampered = fs::read_to_string(&path).unwrap().replace("17", "99");
        fs::write(&path, tampered).unwrap();
        match cache.load_checked(key) {
            CacheLoad::Corrupt(reason) => assert!(reason.contains("checksum"), "{reason}"),
            other => panic!("tampered entry returned {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry removed from the hot cache");
        assert!(
            cache
                .quarantine_dir()
                .join(format!("{key:016x}.json"))
                .exists(),
            "corrupt entry preserved in quarantine"
        );
        // The slot is now a plain miss; a recompute stores cleanly.
        assert_eq!(cache.load_checked(key), CacheLoad::Miss);
        let healed = Json::object([("drops", Json::from(17u64))]);
        cache.store(key, &healed).unwrap();
        assert_eq!(cache.load_checked(key), CacheLoad::Hit(healed));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncated_entry_is_detected_not_parsed() {
        // The satellite audit case: a partial write that died mid-file.
        let cache = ResultCache::new(tempdir("truncated"));
        let key = ResultCache::key("s", 6, "v");
        cache
            .store(key, &Json::object([("drops", Json::from(17u64))]))
            .unwrap();
        let path = cache.dir().join(format!("{key:016x}.json"));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        match cache.load_checked(key) {
            CacheLoad::Corrupt(_) => {}
            other => panic!("truncated entry returned {other:?}"),
        }
        assert_eq!(cache.load_checked(key), CacheLoad::Miss, "slot recovered");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn legacy_footerless_entry_self_heals() {
        let cache = ResultCache::new(tempdir("legacy"));
        let key = ResultCache::key("s", 7, "v");
        fs::create_dir_all(cache.dir()).unwrap();
        // A pre-checksum entry: bare JSON, no footer line.
        fs::write(
            cache.dir().join(format!("{key:016x}.json")),
            Json::object([("drops", Json::from(17u64))]).dump(),
        )
        .unwrap();
        assert!(matches!(cache.load_checked(key), CacheLoad::Corrupt(_)));
        assert_eq!(cache.load_checked(key), CacheLoad::Miss);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn atomic_write_replaces_existing_content() {
        let dir = tempdir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
