//! Content-addressed on-disk result cache.
//!
//! Each job result lives in `results/cache/<fnv64(scenario + seed +
//! code_version)>.json`. The key covers the full scenario description and
//! a code-version string, so changing either the configuration or the
//! simulator invalidates exactly the affected cells; re-running a sweep
//! only executes the missing ones, and an interrupted sweep resumes where
//! it stopped.

use crate::json::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over a byte string.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The on-disk cache. Dropping in a different directory (e.g. a tempdir
/// in tests) isolates runs completely.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and lazily creates) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The conventional location: `results/cache` under the repo root.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// The cache key for a job: `fnv64(scenario + seed + code_version)`.
    pub fn key(scenario: &str, seed: u64, code_version: &str) -> u64 {
        let mut bytes = Vec::with_capacity(scenario.len() + code_version.len() + 16);
        bytes.extend_from_slice(scenario.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(code_version.as_bytes());
        fnv64(&bytes)
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Loads a cached result, or `None` when absent or unreadable
    /// (a corrupt entry behaves like a miss and is overwritten on store).
    pub fn load(&self, key: u64) -> Option<Json> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        Json::parse(&text).ok()
    }

    /// Stores a result atomically (write to a temp file, then rename),
    /// so an interrupted run never leaves a truncated entry behind.
    pub fn store(&self, key: u64, value: &Json) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".{key:016x}.tmp"));
        fs::write(&tmp, value.dump())?;
        fs::rename(&tmp, self.path(key))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("liteworp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_separates_fields() {
        // "ab" + seed vs "a" + different-bytes must not collide by
        // concatenation ambiguity thanks to separators.
        let a = ResultCache::key("scenario-a", 1, "v1");
        assert_ne!(a, ResultCache::key("scenario-a", 2, "v1"));
        assert_ne!(a, ResultCache::key("scenario-b", 1, "v1"));
        assert_ne!(a, ResultCache::key("scenario-a", 1, "v2"));
        assert_eq!(a, ResultCache::key("scenario-a", 1, "v1"));
    }

    #[test]
    fn store_load_round_trip() {
        let cache = ResultCache::new(tempdir("roundtrip"));
        let key = ResultCache::key("s", 3, "v");
        assert_eq!(cache.load(key), None, "cold cache misses");
        let value = Json::object([("drops", Json::from(17u64))]);
        cache.store(key, &value).unwrap();
        assert_eq!(cache.load(key), Some(value));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = ResultCache::new(tempdir("corrupt"));
        let key = ResultCache::key("s", 4, "v");
        fs::create_dir_all(cache.dir()).unwrap();
        fs::write(cache.dir().join(format!("{key:016x}.json")), "{not json").unwrap();
        assert_eq!(cache.load(key), None);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
