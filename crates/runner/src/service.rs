//! A warm, shareable sweep engine for long-lived services.
//!
//! [`run_supervised`](crate::supervisor::run_supervised) builds its pool,
//! opens its journal, and tears everything down per batch — right for
//! one-shot experiment bins, wrong for a daemon. [`SweepEngine`] owns a
//! persistent [`TaskPool`](crate::task_pool::TaskPool) plus one shared
//! result cache and multiplexes any number of concurrent
//! [`SweepEngine::run_sweep`] calls over them: every request's jobs land
//! on the same workers, hit the same content-addressed cache, and journal
//! to their own per-request WAL for crash resume.
//!
//! Determinism is unchanged from the batch path: both run the same
//! per-job supervision body ([`crate::supervisor`]), so a sweep submitted
//! to a warm engine produces the byte-identical `results_digest` the
//! batch bins produce — regardless of what else the engine is serving.

use crate::cache::ResultCache;
use crate::engine::{CacheValue, JobSpec, RunConfig, RunReport};
use crate::journal::sweep_id;
use crate::pool;
use crate::supervisor::{
    build_report, job_keys, open_journal, supervise_one, FinishedJob, JobContext, JobFailure,
    JobFaultHook, Supervision,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Progress of one job inside a sweep, reported to the observer as soon
/// as the job settles (in completion order, not job order).
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// Index of the job within its sweep.
    pub index: usize,
    /// Total jobs in the sweep.
    pub total: usize,
    /// The job's label.
    pub label: String,
    /// Seed index of the job.
    pub seed: u64,
    /// Whether the job produced a result (false = quarantined).
    pub ok: bool,
    /// Whether the result came from the shared cache.
    pub cached: bool,
    /// Whether the result was replayed from the resume journal.
    pub journaled: bool,
}

/// The type a sweep observer must have: called once per settled job,
/// possibly from several worker threads at once.
pub type ProgressObserver = dyn Fn(JobProgress) + Send + Sync;

/// The job body a service sweep executes, shared across worker threads.
pub type SweepExec<T> = dyn Fn(&JobSpec, u64, &JobContext) -> Result<T, JobFailure> + Send + Sync;

/// A persistent execution engine: one pool, one cache, many sweeps.
pub struct SweepEngine {
    pool: crate::task_pool::TaskPool,
    cache: Option<ResultCache>,
    code_version: String,
}

impl SweepEngine {
    /// Builds an engine with `threads` workers (`None` resolves via
    /// `LITEWORP_JOBS` / core count), an optional shared result cache,
    /// and the code version folded into every cache key.
    pub fn new(threads: Option<usize>, cache: Option<ResultCache>, code_version: &str) -> Self {
        SweepEngine {
            pool: crate::task_pool::TaskPool::new(pool::resolve_threads(threads)),
            cache,
            code_version: code_version.to_string(),
        }
    }

    /// Worker threads the engine multiplexes sweeps over.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The code version folded into cache keys.
    pub fn code_version(&self) -> &str {
        &self.code_version
    }

    /// The [`RunConfig`] equivalent of this engine's identity — the
    /// config a batch bin would use to produce the same cache keys.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            threads: self.threads(),
            cache: self.cache.clone(),
            code_version: self.code_version.clone(),
        }
    }

    /// Executes one sweep on the shared pool and blocks until it drains.
    ///
    /// Safe to call from many threads at once: jobs from concurrent
    /// sweeps interleave on the workers, but each sweep's report is
    /// assembled in its own job order, so `results_digest` matches the
    /// batch path exactly. `sup.journal` names this request's own WAL
    /// (per-request, unlike the shared cache). The observer, if any, is
    /// invoked once per settled job from worker threads.
    ///
    /// The manifest's `utilization` is empty on this path: workers are
    /// shared by every in-flight sweep, so per-sweep busy fractions are
    /// not attributable.
    pub fn run_sweep<T>(
        &self,
        sup: &Supervision,
        jobs: Vec<JobSpec>,
        hook: Option<Arc<dyn JobFaultHook + Send + Sync>>,
        exec: Arc<SweepExec<T>>,
        observer: Option<Arc<ProgressObserver>>,
    ) -> RunReport<T>
    where
        T: CacheValue + Send + 'static,
    {
        let cfg = self.run_config();
        // lint: allow(D001) sweep wall-clock for the manifest profile
        // block; results, retries and deadlines never depend on it
        let started = Instant::now();
        let keys = job_keys(&cfg, &jobs);
        let sweep = sweep_id(&keys, &cfg.code_version);
        let (journal, resumed) = open_journal(sup, sweep, jobs.len());

        let total = jobs.len();
        let shared = Arc::new(SweepShared {
            jobs,
            keys,
            resumed,
            journal,
            cache: self.cache.clone(),
            sup: sup.clone(),
            hook,
            slots: (0..total).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(total),
            drained: Condvar::new(),
        });

        for i in 0..total {
            let shared = Arc::clone(&shared);
            let exec = Arc::clone(&exec);
            let observer = observer.clone();
            self.pool.spawn(move |worker| {
                shared.run_job(i, worker, &*exec, observer.as_deref());
            });
        }

        // Wait for every job to settle. The per-job tasks always fill
        // their slot and decrement the counter, even if the supervision
        // body itself panics.
        let mut remaining = shared
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *remaining > 0 {
            remaining = shared
                .drained
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);

        let finished: Vec<FinishedJob<T>> = shared
            .slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    // lint: allow(P002) invariant: run_job writes every
                    // slot before the drained counter reaches zero
                    .expect("every sweep job settled exactly once")
            })
            .collect();

        build_report(
            &shared.jobs,
            &shared.keys,
            finished,
            self.threads(),
            started.elapsed().as_secs_f64() * 1000.0,
            Vec::new(),
        )
    }
}

/// Per-sweep state shared between the submitting thread and the pool
/// workers running the sweep's jobs.
struct SweepShared<T> {
    jobs: Vec<JobSpec>,
    keys: Vec<u64>,
    resumed: std::collections::BTreeMap<u64, crate::journal::JournalEntry>,
    journal: Option<Mutex<crate::journal::SweepJournal>>,
    cache: Option<ResultCache>,
    sup: Supervision,
    hook: Option<Arc<dyn JobFaultHook + Send + Sync>>,
    slots: Vec<Mutex<Option<FinishedJob<T>>>>,
    remaining: Mutex<usize>,
    drained: Condvar,
}

impl<T: CacheValue> SweepShared<T> {
    fn run_job(
        &self,
        i: usize,
        worker: usize,
        exec: &SweepExec<T>,
        observer: Option<&ProgressObserver>,
    ) {
        // lint: allow(D001) per-job host wall time for the manifest
        // profile only (queue wait is not measurable on the shared pool)
        let t0 = Instant::now();
        let supervised = catch_unwind(AssertUnwindSafe(|| {
            supervise_one(
                &self.jobs[i],
                self.keys[i],
                &self.resumed,
                self.cache.as_ref(),
                &self.sup,
                self.hook.as_deref().map(|h| h as &dyn JobFaultHook),
                &self.journal,
                &|job, derived, ctx| exec(job, derived, ctx),
            )
        }))
        .map_err(|payload| format!("job {i}: {}", pool::panic_message(payload)));

        if let (Some(observer), Ok(s)) = (observer, supervised.as_ref()) {
            observer(JobProgress {
                index: i,
                total: self.jobs.len(),
                label: self.jobs[i].label.clone(),
                seed: self.jobs[i].seed,
                ok: s.outcome.is_ok(),
                cached: matches!(s.outcome, Ok(crate::supervisor::Source::Cache(_))),
                journaled: matches!(s.outcome, Ok(crate::supervisor::Source::Journal(_))),
            });
        }

        *self.slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(FinishedJob {
            result: supervised,
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
            queue_wait_ms: 0.0,
            worker,
        });
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            self.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_jobs;
    use crate::json::Json;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct Val(f64);

    impl CacheValue for Val {
        fn to_json(&self) -> Json {
            Json::object([("v", Json::from(self.0))])
        }
        fn from_json(json: &Json) -> Option<Self> {
            json.get("v")?.as_f64().map(Val)
        }
    }

    fn jobs(scenario: &str, n: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|seed| JobSpec {
                label: format!("cell seed={seed}"),
                scenario: scenario.into(),
                seed,
            })
            .collect()
    }

    fn val_exec() -> Arc<SweepExec<Val>> {
        Arc::new(|j: &JobSpec, derived: u64, _: &JobContext| {
            Ok(Val((j.seed as f64) + (derived % 7) as f64))
        })
    }

    #[test]
    fn engine_digest_matches_the_batch_path() {
        let js = jobs("svc-parity", 12);
        let batch = run_jobs(
            &RunConfig {
                threads: 3,
                cache: None,
                code_version: "svc-test-v1".into(),
            },
            &js,
            |j, derived| Val((j.seed as f64) + (derived % 7) as f64),
        );
        let engine = SweepEngine::new(Some(3), None, "svc-test-v1");
        let report = engine.run_sweep(&Supervision::default(), js, None, val_exec(), None);
        assert_eq!(report.manifest.failed, 0);
        assert_eq!(
            report.manifest.results_digest, batch.manifest.results_digest,
            "warm engine reproduces the batch digest"
        );
    }

    #[test]
    fn concurrent_sweeps_share_the_engine_deterministically() {
        let engine = Arc::new(SweepEngine::new(Some(4), None, "svc-test-v1"));
        let solo: Vec<u64> = (0..4)
            .map(|k| {
                let report = engine.run_sweep(
                    &Supervision::default(),
                    jobs(&format!("svc-conc-{k}"), 8),
                    None,
                    val_exec(),
                    None,
                );
                report.manifest.results_digest
            })
            .collect();
        let concurrent: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    let engine = Arc::clone(&engine);
                    scope.spawn(move || {
                        engine
                            .run_sweep(
                                &Supervision::default(),
                                jobs(&format!("svc-conc-{k}"), 8),
                                None,
                                val_exec(),
                                None,
                            )
                            .manifest
                            .results_digest
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(solo, concurrent, "interleaving does not perturb digests");
    }

    #[test]
    fn shared_cache_answers_repeat_sweeps() {
        let dir = std::env::temp_dir().join(format!("liteworp-svc-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = SweepEngine::new(Some(2), Some(ResultCache::new(&dir)), "svc-test-v1");
        let executions = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&executions);
        let exec: Arc<SweepExec<Val>> = Arc::new(move |j, _, _| {
            counted.fetch_add(1, Ordering::SeqCst);
            Ok(Val(j.seed as f64))
        });
        let first = engine.run_sweep(
            &Supervision::default(),
            jobs("svc-cache", 6),
            None,
            Arc::clone(&exec),
            None,
        );
        assert_eq!(first.manifest.cache_misses, 6);
        let second = engine.run_sweep(
            &Supervision::default(),
            jobs("svc-cache", 6),
            None,
            exec,
            None,
        );
        assert_eq!(second.manifest.cache_hits, 6, "second request is all hits");
        assert_eq!(executions.load(Ordering::SeqCst), 6, "no re-execution");
        assert_eq!(
            first.manifest.results_digest,
            second.manifest.results_digest
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observer_sees_every_job_with_provenance() {
        let dir = std::env::temp_dir().join(format!("liteworp-svc-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = SweepEngine::new(Some(2), Some(ResultCache::new(&dir)), "svc-test-v1");
        let seen: Arc<Mutex<Vec<JobProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let observer: Arc<ProgressObserver> = Arc::new(move |p| sink.lock().unwrap().push(p));
        engine.run_sweep(
            &Supervision::default(),
            jobs("svc-obs", 5),
            None,
            val_exec(),
            Some(Arc::clone(&observer)),
        );
        {
            let events = seen.lock().unwrap();
            assert_eq!(events.len(), 5);
            assert!(events.iter().all(|p| p.ok && !p.cached && p.total == 5));
        }
        seen.lock().unwrap().clear();
        engine.run_sweep(
            &Supervision::default(),
            jobs("svc-obs", 5),
            None,
            val_exec(),
            Some(observer),
        );
        let events = seen.lock().unwrap();
        assert_eq!(events.len(), 5);
        assert!(
            events.iter().all(|p| p.ok && p.cached),
            "second run is hits"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_survives_a_panicking_job_body() {
        let engine = SweepEngine::new(Some(2), None, "svc-test-v1");
        let exec: Arc<SweepExec<Val>> = Arc::new(|j, _, _| {
            if j.seed == 1 {
                panic!("svc boom");
            }
            Ok(Val(j.seed as f64))
        });
        let report = engine.run_sweep(
            &Supervision::default(),
            jobs("svc-panic", 4),
            None,
            exec,
            None,
        );
        assert_eq!(report.manifest.failed, 1);
        assert_eq!(report.successes().count(), 3);
        // The engine is still serviceable afterwards.
        let after = engine.run_sweep(
            &Supervision::default(),
            jobs("svc-after", 3),
            None,
            val_exec(),
            None,
        );
        assert_eq!(after.manifest.failed, 0);
    }

    #[test]
    fn per_request_journal_resumes_on_a_warm_engine() {
        let dir = std::env::temp_dir().join(format!("liteworp-svc-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal = dir.join("req.jsonl");
        let engine = SweepEngine::new(Some(2), None, "svc-test-v1");
        let sup = Supervision {
            journal: Some(journal.clone()),
            ..Supervision::default()
        };
        let full = engine.run_sweep(&sup, jobs("svc-journal", 6), None, val_exec(), None);

        // Keep the header plus 3 completions, as if the daemon died.
        let text = std::fs::read_to_string(&journal).unwrap();
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&journal, format!("{}\n", keep.join("\n"))).unwrap();

        let resume = Supervision {
            journal: Some(journal.clone()),
            resume: true,
            ..Supervision::default()
        };
        let resumed = engine.run_sweep(&resume, jobs("svc-journal", 6), None, val_exec(), None);
        assert_eq!(resumed.manifest.journal_hits, 3);
        assert_eq!(
            resumed.manifest.results_digest, full.manifest.results_digest,
            "resumed request matches the uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
