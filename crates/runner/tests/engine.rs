//! Integration tests of the execution engine: determinism across thread
//! counts, cache round-trips on disk, and failure isolation — the three
//! contracts the experiment harness builds on.

use liteworp_runner::{
    run_jobs, CacheValue, JobSpec, Json, Pcg32, ResultCache, Rng, RunConfig, Summary,
};

#[derive(Debug, Clone, PartialEq)]
struct Sample {
    value: f64,
}

impl CacheValue for Sample {
    fn to_json(&self) -> Json {
        Json::Obj(vec![("value".to_string(), Json::Num(self.value))])
    }
    fn from_json(json: &Json) -> Option<Self> {
        Some(Sample {
            value: json.get("value")?.as_f64()?,
        })
    }
}

fn jobs(n: u64) -> Vec<JobSpec> {
    (0..n)
        .map(|seed| JobSpec {
            label: format!("job {seed}"),
            scenario: "scenario-x".to_string(),
            seed,
        })
        .collect()
}

/// A pseudo-experiment: derive the job's RNG exactly as a real
/// simulation would and draw from it.
fn execute(spec: &JobSpec, derived_seed: u64) -> Sample {
    assert_eq!(derived_seed, spec.derived_seed());
    let mut rng = Pcg32::seed_from_u64(derived_seed);
    Sample {
        value: rng.gen_f64(),
    }
}

#[test]
fn aggregates_are_identical_across_thread_counts() {
    let run = |threads| {
        let cfg = RunConfig {
            threads,
            ..RunConfig::default()
        };
        let report = run_jobs(&cfg, &jobs(16), execute);
        let values: Vec<f64> = report.successes().map(|s| s.value).collect();
        (values.clone(), Summary::of(&values))
    };
    let (v1, s1) = run(1);
    let (v4, s4) = run(4);
    assert_eq!(v1, v4, "per-job results must not depend on thread count");
    assert_eq!(s1.mean.to_bits(), s4.mean.to_bits());
    assert_eq!(s1.std_dev.to_bits(), s4.std_dev.to_bits());
    assert_eq!(s1.ci95.to_bits(), s4.ci95.to_bits());
}

#[test]
fn cache_round_trip_hits_every_job_on_rerun() {
    let dir = std::env::temp_dir().join(format!("liteworp-runner-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunConfig {
        threads: 2,
        cache: Some(ResultCache::new(&dir)),
        code_version: "it-1".to_string(),
    };
    let first = run_jobs(&cfg, &jobs(8), execute);
    assert_eq!(first.manifest.cache_hits, 0);
    assert_eq!(first.manifest.cache_misses, 8);

    let second = run_jobs(&cfg, &jobs(8), |spec, seed| -> Sample {
        panic!("must not execute on a warm cache: {spec:?} {seed}")
    });
    assert_eq!(second.manifest.cache_hits, 8);
    assert_eq!(second.manifest.cache_misses, 0);
    let a: Vec<f64> = first.successes().map(|s| s.value).collect();
    let b: Vec<f64> = second.successes().map(|s| s.value).collect();
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_jobs_are_isolated_and_reported() {
    let cfg = RunConfig {
        threads: 3,
        ..RunConfig::default()
    };
    let report = run_jobs(&cfg, &jobs(9), |spec, seed| {
        if spec.seed % 3 == 1 {
            panic!("seed {} refuses to run", spec.seed);
        }
        execute(spec, seed)
    });
    assert_eq!(report.manifest.failed, 3);
    assert_eq!(report.successes().count(), 6);
    for (i, res) in report.results.iter().enumerate() {
        if i as u64 % 3 == 1 {
            let err = res.as_ref().expect_err("job should have failed");
            assert!(err.message().contains("refuses to run"), "{err}");
        } else {
            assert!(res.is_ok());
        }
    }
}
