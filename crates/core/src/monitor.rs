//! Local monitoring (Section 4.2.1) — the guard-side engine.
//!
//! Every overheard control packet is described to the monitor as a
//! [`PacketObs`]. The monitor, consulting the node's [`NeighborTable`]:
//!
//! 1. **Checks forwards for fabrication** — if this node guards the link
//!    `claimed_prev → sender`, the watch buffer must contain the matching
//!    transmission by `claimed_prev`; otherwise `MalC(sender)` rises by
//!    `V_f`.
//! 2. **Arms the watch** for the packet just transmitted — unicasts to a
//!    guarded receiver get a forwarding deadline δ (drop detection),
//!    broadcasts are recorded for future fabrication checks.
//! 3. **Accuses** — when a neighbor's `MalC` crosses `C_t`, emits a single
//!    [`MonitorEvent::Accuse`] naming the suspect and revoking it locally.
//!
//! The monitor is sans-IO: the host forwards `Accuse` events as
//! authenticated alert messages and calls [`LocalMonitor::expire`] on a
//! timer to run drop detection.

use crate::config::{Config, InvalidConfig};
use crate::malc::MalcTable;
use crate::neighbor::NeighborTable;
use crate::types::{Micros, Misbehavior, NodeId, PacketKind, PacketSig};
use crate::watch::WatchBuffer;
use std::collections::BTreeSet;

/// A control-packet transmission as observed on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketObs {
    /// The node announcing itself as this frame's transmitter.
    pub sender: NodeId,
    /// The previous hop the sender announces (`None` when the sender
    /// originated the packet itself).
    pub claimed_prev: Option<NodeId>,
    /// The unicast next hop, or `None` for a broadcast.
    pub link_dst: Option<NodeId>,
    /// Hop-independent packet identity.
    pub sig: PacketSig,
    /// `true` when `link_dst` is the packet's final destination, so no
    /// further forwarding is expected.
    pub terminal: bool,
}

/// Events produced by the monitor for the host to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorEvent {
    /// Misbehavior detected and counted; informational.
    Suspected {
        /// The misbehaving node.
        suspect: NodeId,
        /// What it did.
        kind: Misbehavior,
        /// Its `MalC` after the increment.
        malc: u32,
    },
    /// `MalC` crossed `C_t`: the suspect has been revoked locally and the
    /// host must send authenticated alerts to the suspect's neighbors.
    Accuse {
        /// The node to accuse.
        suspect: NodeId,
        /// Neighbors of the suspect (from stored second-hop knowledge)
        /// that should receive the alert, excluding this node.
        recipients: Vec<NodeId>,
    },
}

/// The guard-side monitoring engine of one node.
///
/// # Example
///
/// A guard that neighbors `X(=1)` and `A(=2)` catches `A` fabricating:
///
/// ```
/// use liteworp::config::Config;
/// use liteworp::monitor::{LocalMonitor, MonitorEvent, PacketObs};
/// use liteworp::neighbor::NeighborTable;
/// use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
///
/// let mut table = NeighborTable::new(NodeId(0));
/// table.add_neighbor(NodeId(1));
/// table.add_neighbor(NodeId(2));
/// table.set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1)]);
///
/// let mut mon = LocalMonitor::new(Config::default());
/// let sig = PacketSig {
///     kind: PacketKind::RouteRequest,
///     origin: NodeId(5),
///     target: NodeId(6),
///     seq: 1,
/// };
/// // A(=2) forwards claiming prev = X(=1), but X never transmitted it.
/// let obs = PacketObs {
///     sender: NodeId(2),
///     claimed_prev: Some(NodeId(1)),
///     link_dst: None,
///     sig,
///     terminal: false,
/// };
/// let events = mon.observe(&mut table, &obs, Micros(0));
/// assert!(matches!(events[0], MonitorEvent::Suspected { suspect: NodeId(2), .. }));
/// ```
#[derive(Debug, Clone)]
pub struct LocalMonitor {
    config: Config,
    watch: WatchBuffer,
    malc: MalcTable,
    accused: BTreeSet<NodeId>,
    last_alert_round: std::collections::BTreeMap<NodeId, Micros>,
    externally_suspected: BTreeSet<NodeId>,
    last_collision: Option<Micros>,
    watch_expiries: u64,
}

impl LocalMonitor {
    /// Creates a monitor with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`LocalMonitor::try_new`] to handle the error instead.
    pub fn new(config: Config) -> Self {
        // lint: allow(P002) documented panic; Self::try_new is the
        // fallible variant for callers with untrusted configs
        Self::try_new(config).expect("invalid LITEWORP config")
    }

    /// Creates a monitor, returning [`InvalidConfig`] instead of
    /// panicking when the parameters are inconsistent.
    pub fn try_new(config: Config) -> Result<Self, InvalidConfig> {
        config.validate()?;
        let watch = WatchBuffer::new(config.watch_capacity);
        let malc = MalcTable::new(config.malc_window_us);
        Ok(LocalMonitor {
            config,
            watch,
            malc,
            accused: BTreeSet::new(),
            last_alert_round: std::collections::BTreeMap::new(),
            externally_suspected: BTreeSet::new(),
            last_collision: None,
            watch_expiries: 0,
        })
    }

    /// Records that another guard's alert named `node` as a suspect
    /// (even before γ alerts arrive). The monitor then gives receivers of
    /// `node`'s packets the benefit of the doubt: pending drop
    /// expectations for its transmissions are cancelled, no new ones are
    /// armed, and forwards claiming `node` as previous hop are not judged
    /// (neighbors that already isolated `node` legitimately refuse its
    /// packets, which would otherwise look like drops here).
    pub fn note_external_suspicion(&mut self, node: NodeId) {
        self.externally_suspected.insert(node);
        self.watch.cancel_expectations_from(node);
    }

    /// Records that this node's radio lost a frame to a collision at
    /// `now`. Within the configured grace window the guard abstains from
    /// fabrication judgments, and drop accusations whose watch entry
    /// overlaps a collision are suppressed — the lost frame may have been
    /// the very transmission whose absence would be punished.
    pub fn note_collision(&mut self, now: Micros) {
        self.last_collision = Some(now);
    }

    fn in_collision_grace(&self, now: Micros) -> bool {
        match (self.last_collision, self.config.collision_grace_us) {
            (Some(t), grace) if grace > 0 => now.0.saturating_sub(t.0) < grace,
            _ => false,
        }
    }

    fn collision_since(&self, t: Micros) -> bool {
        self.config.collision_grace_us > 0 && self.last_collision.is_some_and(|c| c >= t)
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Read access to the watch buffer (diagnostics, cost accounting).
    pub fn watch(&self) -> &WatchBuffer {
        &self.watch
    }

    /// Current `MalC` for a node.
    pub fn malc(&self, node: NodeId, now: Micros) -> u32 {
        self.malc.value(node, now)
    }

    /// Processes one overheard transmission. Mutates `table` only to
    /// revoke a freshly accused suspect.
    pub fn observe(
        &mut self,
        table: &mut NeighborTable,
        obs: &PacketObs,
        now: Micros,
    ) -> Vec<MonitorEvent> {
        let mut events = Vec::new();

        // 0. Re-alert: an accused node still transmitting means some of
        // its neighbors have not isolated it yet (or it simply refuses to
        // stop) — refresh the alert round, rate-limited.
        if self.accused.contains(&obs.sender) && self.config.realert_interval_us > 0 {
            let due = match self.last_alert_round.get(&obs.sender) {
                None => true,
                Some(last) => now.0.saturating_sub(last.0) >= self.config.realert_interval_us,
            };
            if due {
                self.last_alert_round.insert(obs.sender, now);
                events.push(MonitorEvent::Accuse {
                    suspect: obs.sender,
                    recipients: Self::alert_recipients(table, obs.sender),
                });
            }
        }

        // 1. Fabrication check on the forward we just overheard.
        if let Some(prev) = obs.claimed_prev {
            if prev != obs.sender
                && table.is_guard_of(prev, obs.sender)
                && !self.accused.contains(&obs.sender)
                && !self.externally_suspected.contains(&prev)
                && !self.watch.confirm_forward(prev, &obs.sig, obs.sender)
                && !self.in_collision_grace(now)
            {
                #[cfg(debug_assertions)]
                if std::env::var_os("LITEWORP_DEBUG_FABRICATION").is_some() {
                    eprintln!(
                        "FAB guard={} sender={} prev={} sig={:?} t={}us",
                        table.owner(),
                        obs.sender,
                        prev,
                        obs.sig,
                        now.0
                    );
                }
                self.punish(
                    table,
                    obs.sender,
                    Misbehavior::Fabrication,
                    now,
                    &mut events,
                );
            }
        }

        // 2. Arm the watch for this transmission.
        let deadline = now.saturating_add(self.config.watch_timeout_us);
        match obs.link_dst {
            Some(dst) if !obs.terminal => {
                // Unicast that must be forwarded: watch it if we guard the
                // link sender -> dst (i.e., we can hear dst's forward).
                // No expectation is armed for transmissions of revoked or
                // already-accused nodes — receivers rightly discard those.
                if table.is_guard_of(obs.sender, dst)
                    && !table.is_revoked(obs.sender)
                    && !self.accused.contains(&obs.sender)
                    && !self.externally_suspected.contains(&obs.sender)
                {
                    self.watch
                        .note_transmission_at(obs.sender, obs.sig, Some(dst), deadline, now);
                }
            }
            Some(_) => {
                // Terminal unicast: nothing to forward, nothing to watch.
            }
            None => {
                // Broadcast (flood): record for fabrication checking when
                // the sender is someone we can monitor.
                if (obs.sender == table.owner() || table.is_neighbor(obs.sender))
                    && obs.sig.kind == PacketKind::RouteRequest
                {
                    self.watch
                        .note_transmission_at(obs.sender, obs.sig, None, deadline, now);
                }
            }
        }
        events
    }

    /// Runs drop detection: expires watch entries whose deadline passed
    /// and charges the receivers that failed to forward.
    pub fn expire(&mut self, table: &mut NeighborTable, now: Micros) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        for (dropper, _sig, armed_at) in self.watch.expire(now) {
            self.watch_expiries += 1;
            // A node never charges itself: its own unforwarded receptions
            // are either terminal or already rejected at admission. And a
            // guard that suffered a collision while the entry was armed
            // gives the benefit of the doubt — it may have missed the
            // forward.
            if dropper != table.owner()
                && !self.accused.contains(&dropper)
                && !self.collision_since(armed_at)
            {
                #[cfg(debug_assertions)]
                if std::env::var_os("LITEWORP_DEBUG_DROP").is_some() {
                    eprintln!(
                        "DROP guard={} dropper={} sig={:?} t={}us",
                        table.owner(),
                        dropper,
                        _sig,
                        now.0
                    );
                }
                self.punish(table, dropper, Misbehavior::Drop, now, &mut events);
            }
        }
        events
    }

    /// Records that `forwarder` announced (via a route error) that it
    /// cannot forward `sig`: its pending forward obligation is waived.
    pub fn absolve(&mut self, forwarder: NodeId, sig: &PacketSig) {
        self.watch.absolve(forwarder, sig);
    }

    /// Whether this monitor has already accused `node`.
    pub fn has_accused(&self, node: NodeId) -> bool {
        self.accused.contains(&node)
    }

    /// Cumulative count of watch-buffer entries that timed out
    /// unforwarded (drop candidates), whether or not a charge followed.
    pub fn watch_expiries(&self) -> u64 {
        self.watch_expiries
    }

    fn punish(
        &mut self,
        table: &mut NeighborTable,
        suspect: NodeId,
        kind: Misbehavior,
        now: Micros,
        events: &mut Vec<MonitorEvent>,
    ) {
        let weight = match kind {
            Misbehavior::Fabrication => self.config.fabrication_weight,
            Misbehavior::Drop => self.config.drop_weight,
        };
        let malc = self.malc.record(suspect, weight, now);
        events.push(MonitorEvent::Suspected {
            suspect,
            kind,
            malc,
        });
        if malc >= self.config.malc_threshold {
            self.accused.insert(suspect);
            self.last_alert_round.insert(suspect, now);
            self.malc.clear(suspect);
            // Revoke locally (the guard stops trusting the suspect now).
            table.revoke(suspect);
            events.push(MonitorEvent::Accuse {
                suspect,
                recipients: Self::alert_recipients(table, suspect),
            });
        }
    }

    /// The suspect's neighbors per stored second-hop knowledge — the
    /// recipients of an alert round (falling back to our own neighbors
    /// when no list was ever announced).
    fn alert_recipients(table: &NeighborTable, suspect: NodeId) -> Vec<NodeId> {
        table
            .neighbor_list_of(suspect)
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|&n| n != table.owner() && n != suspect)
                    .collect()
            })
            .unwrap_or_else(|| table.active_neighbors().filter(|&n| n != suspect).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: PacketKind, seq: u64) -> PacketSig {
        PacketSig {
            kind,
            origin: NodeId(10),
            target: NodeId(11),
            seq,
        }
    }

    /// Guard 0 neighbors X=1 and A=2; R_2 = {0, 1, 3, 4}.
    fn setup() -> (NeighborTable, LocalMonitor) {
        let mut table = NeighborTable::new(NodeId(0));
        table.add_neighbor(NodeId(1));
        table.add_neighbor(NodeId(2));
        table.set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2)]);
        table.set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        (table, LocalMonitor::new(Config::default()))
    }

    fn forward_obs(seq: u64) -> PacketObs {
        PacketObs {
            sender: NodeId(2),
            claimed_prev: Some(NodeId(1)),
            link_dst: None,
            sig: sig(PacketKind::RouteRequest, seq),
            terminal: false,
        }
    }

    #[test]
    fn legitimate_forward_is_clean() {
        let (mut table, mut mon) = setup();
        // X=1 broadcasts the request...
        let x_tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: None,
            sig: sig(PacketKind::RouteRequest, 1),
            terminal: false,
        };
        assert!(mon.observe(&mut table, &x_tx, Micros(0)).is_empty());
        // ...then A=2 forwards claiming prev = 1: matches the watch buffer.
        let events = mon.observe(&mut table, &forward_obs(1), Micros(10));
        assert!(events.is_empty(), "no misbehavior: {events:?}");
    }

    #[test]
    fn fabricated_forward_raises_malc_and_eventually_accuses() {
        let (mut table, mut mon) = setup();
        // Defaults: V_f = 2, C_t = 6 -> three fabrications to accuse.
        let e1 = mon.observe(&mut table, &forward_obs(1), Micros(0));
        assert_eq!(
            e1,
            vec![MonitorEvent::Suspected {
                suspect: NodeId(2),
                kind: Misbehavior::Fabrication,
                malc: 2
            }]
        );
        let e = mon.observe(&mut table, &forward_obs(2), Micros(2));
        assert_eq!(e.len(), 1, "not yet accused after two fabrications");
        let e2 = mon.observe(&mut table, &forward_obs(3), Micros(10));
        assert_eq!(e2.len(), 2);
        match &e2[1] {
            MonitorEvent::Accuse {
                suspect,
                recipients,
            } => {
                assert_eq!(*suspect, NodeId(2));
                // Neighbors of 2 per R_2, minus self and suspect.
                assert_eq!(recipients, &vec![NodeId(1), NodeId(3), NodeId(4)]);
            }
            other => panic!("expected accusation, got {other:?}"),
        }
        assert!(table.is_revoked(NodeId(2)), "guard revokes immediately");
        assert!(mon.has_accused(NodeId(2)));
    }

    #[test]
    fn accused_node_is_not_accused_twice() {
        let (mut table, mut mon) = setup();
        for seq in 1..=3u64 {
            mon.observe(&mut table, &forward_obs(seq), Micros(seq));
        }
        assert!(mon.has_accused(NodeId(2)));
        let e = mon.observe(&mut table, &forward_obs(4), Micros(6));
        assert!(e.is_empty(), "no further events after accusation: {e:?}");
    }

    #[test]
    fn non_guard_does_not_judge() {
        let (mut table, mut mon) = setup();
        // Forward claims prev = 7, whom we do not neighbor: not our link.
        let obs = PacketObs {
            claimed_prev: Some(NodeId(7)),
            ..forward_obs(1)
        };
        assert!(mon.observe(&mut table, &obs, Micros(0)).is_empty());
    }

    #[test]
    fn unicast_drop_detection_accuses_receiver() {
        let (mut table, mut mon) = setup();
        // X=1 unicasts a reply to A=2 (we guard 1 -> 2). A never forwards.
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 5),
            terminal: false,
        };
        assert!(mon.observe(&mut table, &tx, Micros(0)).is_empty());
        // Before the deadline: nothing.
        assert!(mon.expire(&mut table, Micros(100)).is_empty());
        // After delta (2 s default): a drop is charged (V_d = 1).
        let events = mon.expire(&mut table, Micros(2_000_000));
        assert_eq!(
            events,
            vec![MonitorEvent::Suspected {
                suspect: NodeId(2),
                kind: Misbehavior::Drop,
                malc: 1
            }]
        );
    }

    #[test]
    fn forwarded_unicast_is_not_a_drop() {
        let (mut table, mut mon) = setup();
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 5),
            terminal: false,
        };
        mon.observe(&mut table, &tx, Micros(0));
        // A=2 forwards to 3 in time.
        let fwd = PacketObs {
            sender: NodeId(2),
            claimed_prev: Some(NodeId(1)),
            link_dst: Some(NodeId(3)),
            sig: sig(PacketKind::RouteReply, 5),
            terminal: false,
        };
        assert!(mon.observe(&mut table, &fwd, Micros(1000)).is_empty());
        assert!(mon.expire(&mut table, Micros(600_000)).is_empty());
    }

    #[test]
    fn terminal_delivery_expects_no_forward() {
        let (mut table, mut mon) = setup();
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 5),
            terminal: true,
        };
        mon.observe(&mut table, &tx, Micros(0));
        assert!(mon.expire(&mut table, Micros(600_000)).is_empty());
    }

    #[test]
    fn repeated_drops_accumulate_to_accusation() {
        let (mut table, mut mon) = setup();
        // V_d = 1, C_t = 6: six dropped replies.
        for seq in 0..6u64 {
            let tx = PacketObs {
                sender: NodeId(1),
                claimed_prev: None,
                link_dst: Some(NodeId(2)),
                sig: sig(PacketKind::RouteReply, seq),
                terminal: false,
            };
            mon.observe(&mut table, &tx, Micros(seq * 1_000_000));
        }
        let events = mon.expire(&mut table, Micros(30_000_000));
        let accuse = events
            .iter()
            .find(|e| matches!(e, MonitorEvent::Accuse { .. }));
        assert!(accuse.is_some(), "6 drops should accuse: {events:?}");
    }

    #[test]
    fn collision_grace_suppresses_fabrication_judgment() {
        let (mut table, mut mon) = setup();
        // A collision just happened at this guard: the "missing" upstream
        // transmission may simply have been lost here.
        mon.note_collision(Micros(1_000));
        let e = mon.observe(&mut table, &forward_obs(1), Micros(2_000));
        assert!(e.is_empty(), "graced: {e:?}");
        // Past the grace window (2 s default) judgment resumes.
        let e = mon.observe(&mut table, &forward_obs(2), Micros(4_000_000));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn collision_during_watch_suppresses_drop_accusation() {
        let (mut table, mut mon) = setup();
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 5),
            terminal: false,
        };
        mon.observe(&mut table, &tx, Micros(0));
        // A collision while the entry is armed: the forward may have been
        // transmitted and lost here.
        mon.note_collision(Micros(100_000));
        let events = mon.expire(&mut table, Micros(3_000_000));
        assert!(events.is_empty(), "graced drop: {events:?}");
    }

    #[test]
    fn collision_before_arming_does_not_excuse_drops() {
        let (mut table, mut mon) = setup();
        mon.note_collision(Micros(0));
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 6),
            terminal: false,
        };
        // Armed *after* the collision: the old collision is irrelevant.
        mon.observe(&mut table, &tx, Micros(10));
        let events = mon.expire(&mut table, Micros(3_000_000));
        assert_eq!(events.len(), 1, "drop must still be charged: {events:?}");
    }

    #[test]
    fn external_suspicion_gives_receivers_benefit_of_the_doubt() {
        let (mut table, mut mon) = setup();
        // An alert names node 1 as a suspect. Receivers refusing node 1's
        // packets must not be charged with drops.
        let tx = PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, 7),
            terminal: false,
        };
        mon.observe(&mut table, &tx, Micros(0));
        mon.note_external_suspicion(NodeId(1));
        let events = mon.expire(&mut table, Micros(3_000_000));
        assert!(
            events.is_empty(),
            "pending expectation not cancelled: {events:?}"
        );
        // And no new expectations are armed for its transmissions.
        let tx2 = PacketObs {
            sig: sig(PacketKind::RouteReply, 8),
            ..tx
        };
        mon.observe(&mut table, &tx2, Micros(4_000_000));
        let events = mon.expire(&mut table, Micros(8_000_000));
        assert!(events.is_empty(), "armed for a suspect: {events:?}");
    }

    #[test]
    fn watch_expiries_accumulate_even_when_charges_are_suppressed() {
        let (mut table, mut mon) = setup();
        let tx = |seq| PacketObs {
            sender: NodeId(1),
            claimed_prev: None,
            link_dst: Some(NodeId(2)),
            sig: sig(PacketKind::RouteReply, seq),
            terminal: false,
        };
        mon.observe(&mut table, &tx(1), Micros(0));
        assert_eq!(mon.watch_expiries(), 0, "nothing expired yet");
        mon.expire(&mut table, Micros(3_000_000));
        assert_eq!(mon.watch_expiries(), 1);
        // A collision overlapping the armed window suppresses the charge,
        // but the expiry itself is still counted.
        mon.observe(&mut table, &tx(2), Micros(4_000_000));
        mon.note_collision(Micros(4_500_000));
        let events = mon.expire(&mut table, Micros(8_000_000));
        assert!(events.is_empty(), "charge graced: {events:?}");
        assert_eq!(mon.watch_expiries(), 2);
    }

    #[test]
    fn own_transmissions_are_not_self_fabrications() {
        let (mut table, mut mon) = setup();
        // A forward where claimed_prev == sender is degenerate; ignore.
        let obs = PacketObs {
            sender: NodeId(2),
            claimed_prev: Some(NodeId(2)),
            link_dst: None,
            sig: sig(PacketKind::RouteRequest, 1),
            terminal: false,
        };
        assert!(mon.observe(&mut table, &obs, Micros(0)).is_empty());
    }
}
