//! LITEWORP protocol parameters.

/// Tunable parameters of the LITEWORP protocol (Section 4, Table 2).
///
/// Notation from the paper:
///
/// | Field | Paper symbol | Meaning |
/// |---|---|---|
/// | `watch_timeout_us` | δ (tau) | deadline for a watched packet to be forwarded |
/// | `fabrication_weight` | `V_f` | `MalC` increment for a fabricated packet |
/// | `drop_weight` | `V_d` | `MalC` increment for a dropped packet |
/// | `malc_threshold` | `C_t` | `MalC` value at which a guard accuses |
/// | `confidence_index` | γ | distinct guard alerts needed to isolate |
/// | `watch_capacity` | — | watch-buffer entries (cost analysis: 4 suffice) |
/// | `malc_window_us` | T | sliding window over which `MalC` accumulates; `0` disables decay |
///
/// # Example
///
/// ```
/// use liteworp::config::Config;
///
/// let cfg = Config::default();
/// assert_eq!(cfg.confidence_index, 2);
/// cfg.validate().expect("defaults are consistent");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Watch-buffer deadline δ in microseconds: how long a guard waits for
    /// the receiver of a packet to forward it before accusing it of a drop.
    pub watch_timeout_us: u64,
    /// `V_f`: `MalC` increment for fabricating a control packet.
    pub fabrication_weight: u32,
    /// `V_d`: `MalC` increment for dropping a control packet.
    pub drop_weight: u32,
    /// `C_t`: threshold at which a guard revokes the neighbor and alerts.
    pub malc_threshold: u32,
    /// γ: number of distinct guards whose alerts a node requires before
    /// isolating a neighbor (the *detection confidence index*).
    pub confidence_index: usize,
    /// Maximum entries the watch buffer retains (oldest evicted first).
    pub watch_capacity: usize,
    /// Sliding window `T` (µs) over which `MalC` contributions persist;
    /// `0` means counters never decay (the paper's static-network default).
    pub malc_window_us: u64,
    /// Extend local monitoring to *data* packets (drop and fabrication
    /// detection on the data plane). The paper monitors control traffic
    /// only; this switch implements the natural extension (pursued by the
    /// authors' follow-up work) that also catches plain blackholes.
    /// Default off for fidelity.
    pub monitor_data: bool,
    /// Minimum interval between repeated alert rounds for a suspect that
    /// keeps transmitting after being accused (µs). A guard alerts when
    /// `MalC` first crosses `C_t`; if it later still hears the revoked
    /// node on the air, it re-sends its alerts at most this often so
    /// neighbors whose alerts were lost still reach γ. `0` disables
    /// re-alerting (single-shot, the paper's literal reading).
    pub realert_interval_us: u64,
    /// Benefit-of-the-doubt window after a local collision indication:
    /// while a guard knows its own radio recently lost a frame to a
    /// collision, it abstains from judging (the lost frame may well have
    /// been the transmission whose absence it would otherwise punish).
    /// `0` disables abstention.
    pub collision_grace_us: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // 2 s: covers the protocol forwarding jitter plus MAC queueing
            // under flood congestion at 40 kbps, so legitimate-but-delayed
            // forwards are not mistaken for drops/fabrications.
            watch_timeout_us: 2_000_000,
            fabrication_weight: 2,
            drop_weight: 1,
            // k = C_t / V_f = 3 fabrications per guard before accusing.
            // Empirically (see EXPERIMENTS.md) this gives 100% wormhole
            // detection with zero false isolations over long runs, with
            // isolation latencies in the tens of seconds.
            malc_threshold: 6,
            confidence_index: 2,
            // Sized for the watch load of a dense flood-heavy network:
            // a guard arms one entry per overheard control transmission
            // and entries live for delta (2 s). The paper's Section 5.2
            // example derives 4 entries for its far lighter load; the
            // cost model exposes the same sizing computation.
            watch_capacity: 512,
            // Table 2: T = 200 (time units). Contributions older than the
            // window no longer count toward C_t, so rare false suspicions
            // (collision-induced) decay instead of accumulating forever.
            malc_window_us: 200_000_000,
            monitor_data: false,
            realert_interval_us: 30_000_000,
            // 0.8 s: long enough to cover the window in which the missed
            // transmission (jitter + MAC queueing ahead of the judged
            // forward) could have been lost, short enough that a guard in
            // a busy neighborhood still gets to judge between collisions.
            collision_grace_us: 800_000,
        }
    }
}

/// Error returned by [`Config::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig(pub(crate) String);

impl core::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid LITEWORP config: {}", self.0)
    }
}

impl std::error::Error for InvalidConfig {}

impl Config {
    /// Checks parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if any weight or threshold is zero, the
    /// confidence index is zero, or the watch buffer has no capacity.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if self.watch_timeout_us == 0 {
            return Err(InvalidConfig("watch_timeout_us must be positive".into()));
        }
        if self.fabrication_weight == 0 || self.drop_weight == 0 {
            return Err(InvalidConfig("misbehavior weights must be positive".into()));
        }
        if self.malc_threshold == 0 {
            return Err(InvalidConfig("malc_threshold must be positive".into()));
        }
        if self.confidence_index == 0 {
            return Err(InvalidConfig("confidence_index must be positive".into()));
        }
        if self.watch_capacity == 0 {
            return Err(InvalidConfig("watch_capacity must be positive".into()));
        }
        Ok(())
    }

    /// Number of *fabrications* a single guard must observe before its
    /// `MalC` crosses the threshold (the analysis parameter `k`).
    pub fn fabrications_to_accuse(&self) -> u32 {
        self.malc_threshold.div_ceil(self.fabrication_weight)
    }

    /// Number of *drops* a single guard must observe before accusing.
    pub fn drops_to_accuse(&self) -> u32 {
        self.malc_threshold.div_ceil(self.drop_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        Config::default().validate().unwrap();
    }

    #[test]
    fn accusation_counts() {
        let cfg = Config::default();
        assert_eq!(cfg.fabrications_to_accuse(), 3); // ceil(6/2)
        assert_eq!(cfg.drops_to_accuse(), 6); // ceil(6/1)
        let odd = Config {
            malc_threshold: 5,
            ..cfg
        };
        assert_eq!(odd.fabrications_to_accuse(), 3); // ceil(5/2)
    }

    #[test]
    fn rejects_zero_fields() {
        for f in [
            |c: &mut Config| c.watch_timeout_us = 0,
            |c: &mut Config| c.fabrication_weight = 0,
            |c: &mut Config| c.drop_weight = 0,
            |c: &mut Config| c.malc_threshold = 0,
            |c: &mut Config| c.confidence_index = 0,
            |c: &mut Config| c.watch_capacity = 0,
        ] {
            let mut cfg = Config::default();
            f(&mut cfg);
            assert!(cfg.validate().is_err(), "should reject {cfg:?}");
        }
    }

    #[test]
    fn invalid_config_displays_reason() {
        let cfg = Config {
            malc_threshold: 0,
            ..Config::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("malc_threshold"));
    }
}
