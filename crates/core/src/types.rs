//! Shared vocabulary types for the LITEWORP protocol.
//!
//! The core crate is *sans-IO*: it never touches a radio or a clock. Time
//! is passed in as [`Micros`] and node identities as [`NodeId`]; the host
//! (a simulator, or conceivably a real sensor stack) drives the state
//! machines and executes the effects they emit.

use core::fmt;

/// Identity of a network node.
///
/// Deliberately a separate type from any host/simulator id type; hosts
/// convert at the boundary.
///
/// # Example
///
/// ```
/// use liteworp::types::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A point in time, in microseconds since an arbitrary epoch.
///
/// LITEWORP needs no synchronized clocks (a design goal of the paper);
/// every `Micros` is interpreted on the local node's clock only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Micros {
    /// Builds a time from floating-point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid seconds {secs}");
        Micros((secs * 1e6).round() as u64)
    }

    /// This time in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a span in microseconds.
    pub fn saturating_add(self, us: u64) -> Self {
        Micros(self.0.saturating_add(us))
    }
}

/// The class of a monitored control packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketKind {
    /// A flooded route request.
    RouteRequest,
    /// A unicast route reply traveling the reverse path.
    RouteReply,
    /// A unicast application data packet (only monitored when
    /// [`crate::config::Config::monitor_data`] is enabled — the
    /// data-plane extension beyond the paper).
    Data,
}

/// Identity of a control packet, independent of which hop carries it.
///
/// This mirrors the paper's watch-buffer entry: "the packet identification
/// and type, the packet source, the packet destination" plus a sequence
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketSig {
    /// Control packet class.
    pub kind: PacketKind,
    /// Originator of the packet (the flood source or replying destination).
    pub origin: NodeId,
    /// Final destination (for a request: the node being sought).
    pub target: NodeId,
    /// Originator-assigned sequence number.
    pub seq: u64,
}

/// Why a guard increased a neighbor's malicious counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Misbehavior {
    /// The node forwarded a packet it was never sent (claimed a previous
    /// hop that did not transmit it): increment by `V_f`.
    Fabrication,
    /// The node failed to forward a packet within the watch deadline:
    /// increment by `V_d`.
    Drop,
}

impl fmt::Display for Misbehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Misbehavior::Fabrication => write!(f, "fabrication"),
            Misbehavior::Drop => write!(f, "drop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let t = Micros::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t.saturating_add(10).0, 1_500_010);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn micros_rejects_negative() {
        Micros::from_secs_f64(-0.1);
    }

    #[test]
    fn packet_sig_equality_ignores_hop() {
        let a = PacketSig {
            kind: PacketKind::RouteReply,
            origin: NodeId(1),
            target: NodeId(2),
            seq: 9,
        };
        let b = a;
        assert_eq!(a, b);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(Misbehavior::Fabrication.to_string(), "fabrication");
        assert_eq!(Misbehavior::Drop.to_string(), "drop");
    }
}
