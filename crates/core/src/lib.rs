//! # LITEWORP — lightweight wormhole detection and isolation
//!
//! A faithful, host-agnostic implementation of the protocol from
//! *LITEWORP: A Lightweight Countermeasure for the Wormhole Attack in
//! Multihop Wireless Networks* (Khalil, Bagchi, Shroff — DSN 2005).
//!
//! LITEWORP defends multihop wireless networks (sensor / ad-hoc) against
//! wormhole attacks without specialized hardware, clock synchronization,
//! or per-packet overhead. Its three mechanisms, each a module here:
//!
//! * **Secure two-hop neighbor discovery** ([`discovery`], [`neighbor`]):
//!   a one-time HELLO / authenticated-reply / list-announcement exchange
//!   leaves every node knowing its first- and second-hop neighbors.
//! * **Local monitoring** ([`monitor`], [`watch`], [`malc`]): nodes that
//!   neighbor both ends of a link (*guards*) overhear its traffic, detect
//!   fabricated and dropped control packets, and keep per-neighbor
//!   malicious counters.
//! * **Response and isolation** ([`alert`]): a guard whose counter crosses
//!   the threshold revokes the suspect and alerts the suspect's neighbors;
//!   γ distinct accusations isolate the node network-wide among its
//!   neighbors.
//!
//! The [`protocol::Liteworp`] facade bundles everything a host needs; the
//! crate is *sans-IO* — it never touches a radio, a clock, or a scheduler,
//! so the same state machines run under the repository's discrete-event
//! simulator or (in principle) a real sensor stack.
//!
//! # Example
//!
//! A guard catching a wormhole endpoint fabricating route requests:
//!
//! ```
//! use liteworp::prelude::*;
//!
//! // Guard node 0, neighboring the innocent node 1 and the wormhole
//! // endpoint 2 (whose announced neighbor list is {0, 1, 3}).
//! let mut lw = Liteworp::new(Config::default(), KeyStore::new(7, NodeId(0)));
//! lw.table_mut().add_neighbor(NodeId(1));
//! lw.table_mut().add_neighbor(NodeId(2));
//! lw.table_mut().set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2)]);
//! lw.table_mut().set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1), NodeId(3)]);
//!
//! // Node 2 "forwards" requests it claims came from node 1 — but node 1
//! // never transmitted them (they arrived through the wormhole tunnel).
//! let fabricated = |seq| PacketObs {
//!     sender: NodeId(2),
//!     claimed_prev: Some(NodeId(1)),
//!     link_dst: None,
//!     sig: PacketSig { kind: PacketKind::RouteRequest, origin: NodeId(8), target: NodeId(9), seq },
//!     terminal: false,
//! };
//! for seq in 1..3 {
//!     lw.observe_packet(&fabricated(seq), Micros(seq));
//! }
//! let effects = lw.observe_packet(&fabricated(3), Micros(1_000));
//! assert!(effects.iter().any(|e| matches!(e, Effect::Isolated { suspect: NodeId(2) })));
//! assert!(lw.is_isolated(NodeId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod config;
pub mod discovery;
pub mod keys;
pub mod malc;
pub mod monitor;
pub mod neighbor;
pub mod protocol;
pub mod types;
pub mod watch;

pub use protocol::prelude;
pub use protocol::Liteworp;
