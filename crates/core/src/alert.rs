//! Alert collection and the isolation decision (Section 4.2.2).
//!
//! When a guard's `MalC` for a neighbor crosses `C_t`, it sends an
//! authenticated alert to each neighbor of the suspect. A node collects
//! alerts in a per-suspect buffer; once γ *distinct* guards have accused
//! the same suspect (γ = the detection confidence index), the node
//! isolates the suspect: it marks it revoked and exchanges no further
//! packets with it.

use crate::types::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Result of recording one alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertOutcome {
    /// The alert was counted; `got` of `needed` distinct guards have now
    /// accused the suspect.
    Counted {
        /// Distinct accusers so far.
        got: usize,
        /// The confidence index γ.
        needed: usize,
    },
    /// This alert was the γ-th distinct accusation: isolate the suspect.
    Isolate,
    /// The suspect was already isolated; nothing changes.
    AlreadyIsolated,
    /// This guard had already accused this suspect; not double counted.
    Duplicate,
}

/// Per-suspect alert accounting.
///
/// # Example
///
/// ```
/// use liteworp::alert::{AlertBuffer, AlertOutcome};
/// use liteworp::types::NodeId;
///
/// let mut buf = AlertBuffer::new(2);
/// let suspect = NodeId(9);
/// assert_eq!(
///     buf.record(suspect, NodeId(1)),
///     AlertOutcome::Counted { got: 1, needed: 2 }
/// );
/// assert_eq!(buf.record(suspect, NodeId(1)), AlertOutcome::Duplicate);
/// assert_eq!(buf.record(suspect, NodeId(2)), AlertOutcome::Isolate);
/// assert!(buf.is_isolated(suspect));
/// ```
#[derive(Debug, Clone)]
pub struct AlertBuffer {
    confidence_index: usize,
    accusers: BTreeMap<NodeId, BTreeSet<NodeId>>,
    isolated: BTreeSet<NodeId>,
}

impl AlertBuffer {
    /// Creates a buffer requiring `confidence_index` distinct accusers.
    ///
    /// # Panics
    ///
    /// Panics if `confidence_index` is zero.
    pub fn new(confidence_index: usize) -> Self {
        assert!(confidence_index > 0, "confidence index must be positive");
        AlertBuffer {
            confidence_index,
            accusers: BTreeMap::new(),
            isolated: BTreeSet::new(),
        }
    }

    /// Records that `guard` accused `suspect`; see [`AlertOutcome`].
    pub fn record(&mut self, suspect: NodeId, guard: NodeId) -> AlertOutcome {
        if self.isolated.contains(&suspect) {
            return AlertOutcome::AlreadyIsolated;
        }
        let set = self.accusers.entry(suspect).or_default();
        if !set.insert(guard) {
            return AlertOutcome::Duplicate;
        }
        if set.len() >= self.confidence_index {
            self.isolated.insert(suspect);
            self.accusers.remove(&suspect);
            AlertOutcome::Isolate
        } else {
            AlertOutcome::Counted {
                got: set.len(),
                needed: self.confidence_index,
            }
        }
    }

    /// Marks a suspect isolated without alert accounting — used when this
    /// node is itself the accusing guard (a guard revokes immediately on
    /// crossing `C_t`).
    pub fn force_isolate(&mut self, suspect: NodeId) {
        self.accusers.remove(&suspect);
        self.isolated.insert(suspect);
    }

    /// Whether the suspect has been isolated.
    pub fn is_isolated(&self, suspect: NodeId) -> bool {
        self.isolated.contains(&suspect)
    }

    /// Distinct accusers recorded so far for a suspect (zero once
    /// isolated, since the buffer entry is released).
    pub fn accuser_count(&self, suspect: NodeId) -> usize {
        self.accusers.get(&suspect).map_or(0, |s| s.len())
    }

    /// All isolated nodes in ascending id order.
    pub fn isolated(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.isolated.iter().copied()
    }

    /// Storage per the Section 5.2 accounting: 4 bytes per buffered
    /// accuser entry.
    pub fn storage_bytes(&self) -> usize {
        self.accusers.values().map(|s| s.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_guards_reach_isolation() {
        let mut buf = AlertBuffer::new(3);
        let s = NodeId(9);
        assert_eq!(
            buf.record(s, NodeId(1)),
            AlertOutcome::Counted { got: 1, needed: 3 }
        );
        assert_eq!(
            buf.record(s, NodeId(2)),
            AlertOutcome::Counted { got: 2, needed: 3 }
        );
        assert_eq!(buf.record(s, NodeId(3)), AlertOutcome::Isolate);
        assert!(buf.is_isolated(s));
        assert_eq!(buf.record(s, NodeId(4)), AlertOutcome::AlreadyIsolated);
    }

    #[test]
    fn duplicates_do_not_advance_the_count() {
        let mut buf = AlertBuffer::new(2);
        let s = NodeId(9);
        buf.record(s, NodeId(1));
        assert_eq!(buf.record(s, NodeId(1)), AlertOutcome::Duplicate);
        assert_eq!(buf.accuser_count(s), 1);
        assert!(!buf.is_isolated(s));
    }

    #[test]
    fn suspects_are_tracked_independently() {
        let mut buf = AlertBuffer::new(2);
        buf.record(NodeId(8), NodeId(1));
        buf.record(NodeId(9), NodeId(1));
        assert_eq!(buf.accuser_count(NodeId(8)), 1);
        assert_eq!(buf.accuser_count(NodeId(9)), 1);
        assert_eq!(buf.record(NodeId(9), NodeId(2)), AlertOutcome::Isolate);
        assert!(!buf.is_isolated(NodeId(8)));
    }

    #[test]
    fn force_isolate_bypasses_counting() {
        let mut buf = AlertBuffer::new(5);
        buf.force_isolate(NodeId(9));
        assert!(buf.is_isolated(NodeId(9)));
        assert_eq!(
            buf.record(NodeId(9), NodeId(1)),
            AlertOutcome::AlreadyIsolated
        );
        assert_eq!(buf.isolated().collect::<Vec<_>>(), vec![NodeId(9)]);
    }

    #[test]
    fn gamma_one_isolates_immediately() {
        let mut buf = AlertBuffer::new(1);
        assert_eq!(buf.record(NodeId(9), NodeId(1)), AlertOutcome::Isolate);
    }

    #[test]
    fn storage_accounting_releases_after_isolation() {
        let mut buf = AlertBuffer::new(2);
        buf.record(NodeId(9), NodeId(1));
        assert_eq!(buf.storage_bytes(), 4);
        buf.record(NodeId(9), NodeId(2));
        assert_eq!(buf.storage_bytes(), 0, "buffer released on isolation");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gamma_rejected() {
        AlertBuffer::new(0);
    }
}
