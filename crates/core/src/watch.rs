//! The watch buffer (Section 4.2.1).
//!
//! When a guard overhears a packet travel a link it monitors, it saves the
//! packet's identity with a deadline δ. The buffer answers two questions:
//!
//! * **Fabrication** — a node forwards a packet claiming previous hop `X`;
//!   is there a matching entry proving `X` really transmitted it? If not,
//!   the forwarder fabricated the packet.
//! * **Drop** — an entry whose expected forwarder never forwarded before
//!   the deadline convicts that forwarder of dropping the packet.
//!
//! Unicast transmissions (route replies) carry an *expected forwarder* and
//! participate in drop detection; broadcast transmissions (route-request
//! floods) are recorded for fabrication checking only, because duplicate
//! suppression makes "did not rebroadcast" legitimate for a flood.

use crate::types::{Micros, NodeId, PacketSig};

/// One watched transmission — the row view of the buffer's column
/// storage, materialized on demand by [`WatchBuffer::entries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEntry {
    /// The node that transmitted the packet (the link's sending end).
    pub prev: NodeId,
    /// The packet's hop-independent identity.
    pub sig: PacketSig,
    /// For unicast: the receiver that must forward before the deadline.
    /// `None` for broadcasts (fabrication checking only).
    pub expected_forwarder: Option<NodeId>,
    /// Local-clock deadline by which the forward must be overheard.
    pub deadline: Micros,
    /// When the entry was armed (used for collision-grace decisions).
    pub armed_at: Micros,
    satisfied: bool,
}

impl WatchEntry {
    /// Whether the expected forwarder already met its obligation.
    pub fn satisfied(&self) -> bool {
        self.satisfied
    }
}

/// A bounded buffer of watched transmissions.
///
/// # Example
///
/// ```
/// use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
/// use liteworp::watch::WatchBuffer;
///
/// let sig = PacketSig {
///     kind: PacketKind::RouteReply,
///     origin: NodeId(9),
///     target: NodeId(1),
///     seq: 5,
/// };
/// let mut buf = WatchBuffer::new(8);
/// // Guard overhears X(=2) send the reply to A(=3), due within 0.5 s.
/// buf.note_transmission(NodeId(2), sig, Some(NodeId(3)), Micros(500_000));
/// // A forwards it, claiming prev = 2: matches, so no fabrication.
/// assert!(buf.confirm_forward(NodeId(2), &sig, NodeId(3)));
/// // Nothing left to expire.
/// assert!(buf.expire(Micros(600_000)).is_empty());
/// ```
/// Internally the buffer is a struct-of-arrays arena: one flat column per
/// entry field, all indexed together, with live rows occupying
/// `start..len` of every column. Guards scan the buffer on every overheard
/// frame, so the dup-check and confirm scans touch only the dense columns
/// they compare against (`prev`/`sig`/`expected`) instead of striding over
/// whole row structs. Eviction bumps `start` (O(1)); expiry compacts in
/// place preserving order — exactly the `VecDeque<WatchEntry>` semantics
/// this layout replaced, which the unit tests below pin.
#[derive(Debug, Clone)]
pub struct WatchBuffer {
    capacity: usize,
    /// First live row; rows before it were evicted and await compaction.
    start: usize,
    prev: Vec<NodeId>,
    sig: Vec<PacketSig>,
    expected: Vec<Option<NodeId>>,
    deadline: Vec<Micros>,
    armed_at: Vec<Micros>,
    satisfied: Vec<bool>,
    evictions: u64,
}

impl WatchBuffer {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "watch buffer needs capacity");
        WatchBuffer {
            capacity,
            start: 0,
            prev: Vec::new(),
            sig: Vec::new(),
            expected: Vec::new(),
            deadline: Vec::new(),
            armed_at: Vec::new(),
            satisfied: Vec::new(),
            evictions: 0,
        }
    }

    /// Copies row `from` into row `to` across every column.
    fn copy_row(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        self.prev[to] = self.prev[from];
        self.sig[to] = self.sig[from];
        self.expected[to] = self.expected[from];
        self.deadline[to] = self.deadline[from];
        self.armed_at[to] = self.armed_at[from];
        self.satisfied[to] = self.satisfied[from];
    }

    /// Truncates every column to `len` rows and resets the live offset.
    fn truncate(&mut self, len: usize) {
        self.prev.truncate(len);
        self.sig.truncate(len);
        self.expected.truncate(len);
        self.deadline.truncate(len);
        self.armed_at.truncate(len);
        self.satisfied.truncate(len);
        self.start = 0;
    }

    /// Reclaims the evicted prefix once it is at least as large as the
    /// live region, keeping eviction amortized O(1).
    fn maybe_compact(&mut self) {
        if self.start > 0 && self.start * 2 >= self.prev.len() {
            self.prev.drain(..self.start);
            self.sig.drain(..self.start);
            self.expected.drain(..self.start);
            self.deadline.drain(..self.start);
            self.armed_at.drain(..self.start);
            self.satisfied.drain(..self.start);
            self.start = 0;
        }
    }

    /// The live rows as materialized [`WatchEntry`] values, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = WatchEntry> + '_ {
        (self.start..self.prev.len()).map(|i| WatchEntry {
            prev: self.prev[i],
            sig: self.sig[i],
            expected_forwarder: self.expected[i],
            deadline: self.deadline[i],
            armed_at: self.armed_at[i],
            satisfied: self.satisfied[i],
        })
    }

    /// Records an overheard transmission of `sig` by `prev`.
    ///
    /// `expected_forwarder` is the unicast receiver obliged to forward
    /// (or `None` for a broadcast). If the buffer is full, the oldest
    /// entry is evicted (counted in [`WatchBuffer::evictions`]).
    ///
    /// Duplicate `(prev, sig)` entries are ignored so retransmissions do
    /// not double-arm drop detection.
    pub fn note_transmission(
        &mut self,
        prev: NodeId,
        sig: PacketSig,
        expected_forwarder: Option<NodeId>,
        deadline: Micros,
    ) {
        self.note_transmission_at(prev, sig, expected_forwarder, deadline, Micros(0));
    }

    /// Like [`WatchBuffer::note_transmission`], recording when the entry
    /// was armed.
    pub fn note_transmission_at(
        &mut self,
        prev: NodeId,
        sig: PacketSig,
        expected_forwarder: Option<NodeId>,
        deadline: Micros,
        armed_at: Micros,
    ) {
        let dup = (self.start..self.prev.len()).any(|i| {
            self.prev[i] == prev && self.sig[i] == sig && self.expected[i] == expected_forwarder
        });
        if dup {
            return;
        }
        if self.len() == self.capacity {
            // Evict the oldest live row; its storage is reclaimed lazily.
            self.start += 1;
            self.evictions += 1;
        }
        self.maybe_compact();
        self.prev.push(prev);
        self.sig.push(sig);
        self.expected.push(expected_forwarder);
        self.deadline.push(deadline);
        self.armed_at.push(armed_at);
        self.satisfied.push(false);
    }

    /// Checks a forward of `sig` by `forwarder` claiming previous hop
    /// `claimed_prev`. Returns `true` when a matching transmission was
    /// overheard (no fabrication); `false` means the forwarder fabricated
    /// the packet.
    ///
    /// A matching unicast entry whose expected forwarder is `forwarder`
    /// is marked satisfied (obligation met). Entries — satisfied or not —
    /// stay until their deadline: link-layer retransmissions of the same
    /// forward and other legitimate forwarders must keep matching.
    pub fn confirm_forward(
        &mut self,
        claimed_prev: NodeId,
        sig: &PacketSig,
        forwarder: NodeId,
    ) -> bool {
        let mut found = false;
        for i in self.start..self.prev.len() {
            if self.prev[i] == claimed_prev && self.sig[i] == *sig {
                found = true;
                if self.expected[i] == Some(forwarder) {
                    self.satisfied[i] = true;
                }
            }
        }
        found
    }

    /// Removes entries past their deadline; returns one accusation per
    /// unicast entry whose expected forwarder never forwarded: the
    /// `(accused, sig, armed_at)` triples.
    pub fn expire(&mut self, now: Micros) -> Vec<(NodeId, PacketSig, Micros)> {
        let mut accusations = Vec::new();
        let mut w = 0;
        for i in self.start..self.prev.len() {
            if self.deadline[i] > now {
                self.copy_row(i, w);
                w += 1;
            } else if let Some(a) = self.expected[i] {
                if !self.satisfied[i] {
                    accusations.push((a, self.sig[i], self.armed_at[i]));
                }
            }
        }
        self.truncate(w);
        accusations
    }

    /// Marks satisfied every entry expecting `forwarder` to forward `sig`
    /// — used when the forwarder broadcast a route error: failing to
    /// forward for lack of a route is not a drop.
    pub fn absolve(&mut self, forwarder: NodeId, sig: &PacketSig) {
        for i in self.start..self.prev.len() {
            if self.expected[i] == Some(forwarder) && self.sig[i] == *sig {
                self.satisfied[i] = true;
            }
        }
    }

    /// Cancels pending *drop expectations* armed for transmissions of
    /// `prev` (used when the node learns `prev` is suspected: receivers
    /// rightly refusing its packets must not be charged with drops).
    /// Broadcast entries are kept — they still validate honest forwards.
    pub fn cancel_expectations_from(&mut self, prev: NodeId) {
        let mut w = 0;
        for i in self.start..self.prev.len() {
            if self.prev[i] != prev || self.expected[i].is_none() {
                self.copy_row(i, w);
                w += 1;
            }
        }
        self.truncate(w);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.prev.len() - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted due to capacity pressure over the buffer's life.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Storage footprint per the Section 5.2 accounting: 20 bytes per
    /// entry.
    pub fn storage_bytes(&self) -> usize {
        self.len() * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PacketKind;

    fn sig(seq: u64) -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteReply,
            origin: NodeId(9),
            target: NodeId(1),
            seq,
        }
    }

    fn bsig(seq: u64) -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteRequest,
            origin: NodeId(1),
            target: NodeId(9),
            seq,
        }
    }

    #[test]
    fn matched_unicast_forward_clears_entry() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
        // The satisfied entry stays until its deadline (retransmissions
        // of the same forward must keep matching) and expires silently.
        assert_eq!(buf.len(), 1);
        assert!(
            buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)),
            "retry matches"
        );
        assert!(buf.expire(Micros(200)).is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    fn unmatched_forward_is_fabrication() {
        let mut buf = WatchBuffer::new(4);
        // No transmission by node 2 was overheard.
        assert!(!buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
    }

    #[test]
    fn wrong_prev_is_fabrication() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        // Claiming prev = 5 when only 2 transmitted: fabrication.
        assert!(!buf.confirm_forward(NodeId(5), &sig(1), NodeId(3)));
    }

    #[test]
    fn expired_unicast_accuses_the_receiver() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        let accused = buf.expire(Micros(100));
        assert_eq!(accused, vec![(NodeId(3), sig(1), Micros(0))]);
        assert!(buf.is_empty());
    }

    #[test]
    fn broadcast_entries_match_many_forwarders_then_expire_silently() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), bsig(1), None, Micros(100));
        assert!(buf.confirm_forward(NodeId(2), &bsig(1), NodeId(3)));
        assert!(buf.confirm_forward(NodeId(2), &bsig(1), NodeId(4)));
        assert_eq!(buf.len(), 1, "broadcast entry persists");
        assert!(buf.expire(Micros(100)).is_empty(), "no drop accusation");
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut buf = WatchBuffer::new(2);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(2), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(3), Some(NodeId(3)), Micros(100));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.evictions(), 1);
        // The evicted first packet is now "unseen": fabrication if claimed.
        assert!(!buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
    }

    #[test]
    fn duplicate_transmissions_are_not_double_armed() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(150));
        assert_eq!(buf.len(), 1);
        // Satisfy it once; expiry must accuse nobody.
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
        assert!(buf.expire(Micros(200)).is_empty());
    }

    #[test]
    fn forward_by_wrong_node_does_not_clear_obligation() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        // Node 4 forwarding (it also heard node 2) matches the signature,
        // so it is not a fabrication by 4...
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(4)));
        // ...but node 3's obligation stands and expires into an accusation.
        assert_eq!(
            buf.expire(Micros(100)),
            vec![(NodeId(3), sig(1), Micros(0))]
        );
    }

    #[test]
    fn storage_accounting() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(2), None, Micros(100));
        assert_eq!(buf.storage_bytes(), 40);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        WatchBuffer::new(0);
    }

    #[test]
    fn sustained_eviction_churn_keeps_fifo_order() {
        // Push far past capacity so the lazy-compaction path runs many
        // times; the buffer must always hold the newest `capacity` rows in
        // arrival order, like the VecDeque it replaced.
        let mut buf = WatchBuffer::new(3);
        for n in 0..50u64 {
            buf.note_transmission(NodeId(2), sig(n), Some(NodeId(3)), Micros(1_000 + n));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.evictions(), 47);
        let seqs: Vec<u64> = buf.entries().map(|e| e.sig.seq).collect();
        assert_eq!(seqs, vec![47, 48, 49]);
        assert!(!buf.entries().any(|e| e.satisfied()));
        // Only the survivors can still be confirmed.
        assert!(!buf.confirm_forward(NodeId(2), &sig(46), NodeId(3)));
        assert!(buf.confirm_forward(NodeId(2), &sig(47), NodeId(3)));
        // Expiry after eviction churn accuses exactly the unsatisfied rest.
        let accused = buf.expire(Micros(2_000));
        assert_eq!(
            accused,
            vec![
                (NodeId(3), sig(48), Micros(0)),
                (NodeId(3), sig(49), Micros(0)),
            ]
        );
        assert!(buf.is_empty());
    }
}
