//! The watch buffer (Section 4.2.1).
//!
//! When a guard overhears a packet travel a link it monitors, it saves the
//! packet's identity with a deadline δ. The buffer answers two questions:
//!
//! * **Fabrication** — a node forwards a packet claiming previous hop `X`;
//!   is there a matching entry proving `X` really transmitted it? If not,
//!   the forwarder fabricated the packet.
//! * **Drop** — an entry whose expected forwarder never forwarded before
//!   the deadline convicts that forwarder of dropping the packet.
//!
//! Unicast transmissions (route replies) carry an *expected forwarder* and
//! participate in drop detection; broadcast transmissions (route-request
//! floods) are recorded for fabrication checking only, because duplicate
//! suppression makes "did not rebroadcast" legitimate for a flood.

use crate::types::{Micros, NodeId, PacketSig};
use std::collections::VecDeque;

/// One watched transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEntry {
    /// The node that transmitted the packet (the link's sending end).
    pub prev: NodeId,
    /// The packet's hop-independent identity.
    pub sig: PacketSig,
    /// For unicast: the receiver that must forward before the deadline.
    /// `None` for broadcasts (fabrication checking only).
    pub expected_forwarder: Option<NodeId>,
    /// Local-clock deadline by which the forward must be overheard.
    pub deadline: Micros,
    /// When the entry was armed (used for collision-grace decisions).
    pub armed_at: Micros,
    satisfied: bool,
}

/// A bounded buffer of watched transmissions.
///
/// # Example
///
/// ```
/// use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
/// use liteworp::watch::WatchBuffer;
///
/// let sig = PacketSig {
///     kind: PacketKind::RouteReply,
///     origin: NodeId(9),
///     target: NodeId(1),
///     seq: 5,
/// };
/// let mut buf = WatchBuffer::new(8);
/// // Guard overhears X(=2) send the reply to A(=3), due within 0.5 s.
/// buf.note_transmission(NodeId(2), sig, Some(NodeId(3)), Micros(500_000));
/// // A forwards it, claiming prev = 2: matches, so no fabrication.
/// assert!(buf.confirm_forward(NodeId(2), &sig, NodeId(3)));
/// // Nothing left to expire.
/// assert!(buf.expire(Micros(600_000)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WatchBuffer {
    capacity: usize,
    entries: VecDeque<WatchEntry>,
    evictions: u64,
}

impl WatchBuffer {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "watch buffer needs capacity");
        WatchBuffer {
            capacity,
            entries: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Records an overheard transmission of `sig` by `prev`.
    ///
    /// `expected_forwarder` is the unicast receiver obliged to forward
    /// (or `None` for a broadcast). If the buffer is full, the oldest
    /// entry is evicted (counted in [`WatchBuffer::evictions`]).
    ///
    /// Duplicate `(prev, sig)` entries are ignored so retransmissions do
    /// not double-arm drop detection.
    pub fn note_transmission(
        &mut self,
        prev: NodeId,
        sig: PacketSig,
        expected_forwarder: Option<NodeId>,
        deadline: Micros,
    ) {
        self.note_transmission_at(prev, sig, expected_forwarder, deadline, Micros(0));
    }

    /// Like [`WatchBuffer::note_transmission`], recording when the entry
    /// was armed.
    pub fn note_transmission_at(
        &mut self,
        prev: NodeId,
        sig: PacketSig,
        expected_forwarder: Option<NodeId>,
        deadline: Micros,
        armed_at: Micros,
    ) {
        if self
            .entries
            .iter()
            .any(|e| e.prev == prev && e.sig == sig && e.expected_forwarder == expected_forwarder)
        {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back(WatchEntry {
            prev,
            sig,
            expected_forwarder,
            deadline,
            armed_at,
            satisfied: false,
        });
    }

    /// Checks a forward of `sig` by `forwarder` claiming previous hop
    /// `claimed_prev`. Returns `true` when a matching transmission was
    /// overheard (no fabrication); `false` means the forwarder fabricated
    /// the packet.
    ///
    /// A matching unicast entry whose expected forwarder is `forwarder`
    /// is marked satisfied (obligation met). Entries — satisfied or not —
    /// stay until their deadline: link-layer retransmissions of the same
    /// forward and other legitimate forwarders must keep matching.
    pub fn confirm_forward(
        &mut self,
        claimed_prev: NodeId,
        sig: &PacketSig,
        forwarder: NodeId,
    ) -> bool {
        let mut found = false;
        for e in &mut self.entries {
            if e.prev == claimed_prev && e.sig == *sig {
                found = true;
                if e.expected_forwarder == Some(forwarder) {
                    e.satisfied = true;
                }
            }
        }
        found
    }

    /// Removes entries past their deadline; returns one accusation per
    /// unicast entry whose expected forwarder never forwarded: the
    /// `(accused, sig, armed_at)` triples.
    pub fn expire(&mut self, now: Micros) -> Vec<(NodeId, PacketSig, Micros)> {
        let mut accusations = Vec::new();
        self.entries.retain(|e| {
            if e.deadline > now {
                return true;
            }
            if let Some(a) = e.expected_forwarder {
                if !e.satisfied {
                    accusations.push((a, e.sig, e.armed_at));
                }
            }
            false
        });
        accusations
    }

    /// Marks satisfied every entry expecting `forwarder` to forward `sig`
    /// — used when the forwarder broadcast a route error: failing to
    /// forward for lack of a route is not a drop.
    pub fn absolve(&mut self, forwarder: NodeId, sig: &PacketSig) {
        for e in &mut self.entries {
            if e.expected_forwarder == Some(forwarder) && e.sig == *sig {
                e.satisfied = true;
            }
        }
    }

    /// Cancels pending *drop expectations* armed for transmissions of
    /// `prev` (used when the node learns `prev` is suspected: receivers
    /// rightly refusing its packets must not be charged with drops).
    /// Broadcast entries are kept — they still validate honest forwards.
    pub fn cancel_expectations_from(&mut self, prev: NodeId) {
        self.entries
            .retain(|e| e.prev != prev || e.expected_forwarder.is_none());
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted due to capacity pressure over the buffer's life.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Storage footprint per the Section 5.2 accounting: 20 bytes per
    /// entry.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PacketKind;

    fn sig(seq: u64) -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteReply,
            origin: NodeId(9),
            target: NodeId(1),
            seq,
        }
    }

    fn bsig(seq: u64) -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteRequest,
            origin: NodeId(1),
            target: NodeId(9),
            seq,
        }
    }

    #[test]
    fn matched_unicast_forward_clears_entry() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
        // The satisfied entry stays until its deadline (retransmissions
        // of the same forward must keep matching) and expires silently.
        assert_eq!(buf.len(), 1);
        assert!(
            buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)),
            "retry matches"
        );
        assert!(buf.expire(Micros(200)).is_empty());
        assert!(buf.is_empty());
    }

    #[test]
    fn unmatched_forward_is_fabrication() {
        let mut buf = WatchBuffer::new(4);
        // No transmission by node 2 was overheard.
        assert!(!buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
    }

    #[test]
    fn wrong_prev_is_fabrication() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        // Claiming prev = 5 when only 2 transmitted: fabrication.
        assert!(!buf.confirm_forward(NodeId(5), &sig(1), NodeId(3)));
    }

    #[test]
    fn expired_unicast_accuses_the_receiver() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        let accused = buf.expire(Micros(100));
        assert_eq!(accused, vec![(NodeId(3), sig(1), Micros(0))]);
        assert!(buf.is_empty());
    }

    #[test]
    fn broadcast_entries_match_many_forwarders_then_expire_silently() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), bsig(1), None, Micros(100));
        assert!(buf.confirm_forward(NodeId(2), &bsig(1), NodeId(3)));
        assert!(buf.confirm_forward(NodeId(2), &bsig(1), NodeId(4)));
        assert_eq!(buf.len(), 1, "broadcast entry persists");
        assert!(buf.expire(Micros(100)).is_empty(), "no drop accusation");
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut buf = WatchBuffer::new(2);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(2), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(3), Some(NodeId(3)), Micros(100));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.evictions(), 1);
        // The evicted first packet is now "unseen": fabrication if claimed.
        assert!(!buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
    }

    #[test]
    fn duplicate_transmissions_are_not_double_armed() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(150));
        assert_eq!(buf.len(), 1);
        // Satisfy it once; expiry must accuse nobody.
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(3)));
        assert!(buf.expire(Micros(200)).is_empty());
    }

    #[test]
    fn forward_by_wrong_node_does_not_clear_obligation() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        // Node 4 forwarding (it also heard node 2) matches the signature,
        // so it is not a fabrication by 4...
        assert!(buf.confirm_forward(NodeId(2), &sig(1), NodeId(4)));
        // ...but node 3's obligation stands and expires into an accusation.
        assert_eq!(
            buf.expire(Micros(100)),
            vec![(NodeId(3), sig(1), Micros(0))]
        );
    }

    #[test]
    fn storage_accounting() {
        let mut buf = WatchBuffer::new(4);
        buf.note_transmission(NodeId(2), sig(1), Some(NodeId(3)), Micros(100));
        buf.note_transmission(NodeId(2), sig(2), None, Micros(100));
        assert_eq!(buf.storage_bytes(), 40);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        WatchBuffer::new(0);
    }
}
