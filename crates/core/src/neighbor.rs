//! First- and second-hop neighbor knowledge (Section 4.2.1).
//!
//! After secure neighbor discovery every node holds:
//!
//! * its **first-hop** neighbor list `R_me`, each entry carrying a status
//!   (active or revoked), and
//! * for each neighbor `B`, the announced list `R_B` — the node's
//!   **second-hop** knowledge.
//!
//! This data structure answers the three questions LITEWORP keeps asking:
//!
//! 1. *Is this transmitter my neighbor?* (non-neighbors are rejected —
//!    defeats high-power and relay wormholes),
//! 2. *Is the claimed previous hop plausible?* (`prev ∈ R_via` — defeats
//!    encapsulation/out-of-band wormholes that name their colluder), and
//! 3. *Am I a guard of this link?* (neighbor of both endpoints).

use crate::types::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Status of a first-hop neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborStatus {
    /// Trusted: packets are exchanged and the link monitored.
    Active,
    /// Isolated: no packets are accepted from or sent to this node.
    Revoked,
}

/// A node's first- and second-hop neighbor knowledge.
///
/// # Example
///
/// ```
/// use liteworp::neighbor::NeighborTable;
/// use liteworp::types::NodeId;
///
/// let mut t = NeighborTable::new(NodeId(0));
/// t.add_neighbor(NodeId(1));
/// t.add_neighbor(NodeId(2));
/// t.set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2), NodeId(5)]);
///
/// assert!(t.is_active_neighbor(NodeId(1)));
/// // Node 5 is reachable through 1: a valid previous hop for 1's forwards.
/// assert!(t.link_plausible(NodeId(5), NodeId(1)));
/// // Node 9 is not in R_1: a forward from 1 claiming prev=9 is bogus.
/// assert!(!t.link_plausible(NodeId(9), NodeId(1)));
/// // We neighbor both 1 and 2, and 2 ∈ R_1, so we guard the link 2 -> 1.
/// assert!(t.is_guard_of(NodeId(2), NodeId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    me: NodeId,
    first_hop: BTreeMap<NodeId, NeighborStatus>,
    second_hop: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl NeighborTable {
    /// Creates an empty table for node `me`.
    pub fn new(me: NodeId) -> Self {
        NeighborTable {
            me,
            first_hop: BTreeMap::new(),
            second_hop: BTreeMap::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// Registers a first-hop neighbor (idempotent; does not resurrect a
    /// revoked neighbor).
    ///
    /// # Panics
    ///
    /// Panics if asked to add the owner itself.
    pub fn add_neighbor(&mut self, n: NodeId) {
        assert_ne!(n, self.me, "a node is not its own neighbor");
        self.first_hop.entry(n).or_insert(NeighborStatus::Active);
    }

    /// Stores neighbor `b`'s announced list `R_b` (second-hop knowledge).
    /// Ignored if `b` is not a known neighbor — per the protocol, a node
    /// only accepts list announcements from verified neighbors.
    ///
    /// Returns whether the list was stored.
    pub fn set_neighbor_list<I: IntoIterator<Item = NodeId>>(
        &mut self,
        b: NodeId,
        list: I,
    ) -> bool {
        if !self.first_hop.contains_key(&b) {
            return false;
        }
        self.second_hop.insert(b, list.into_iter().collect());
        true
    }

    /// Whether `n` is a *known* neighbor (active or revoked).
    pub fn is_neighbor(&self, n: NodeId) -> bool {
        self.first_hop.contains_key(&n)
    }

    /// Whether `n` is an active (non-revoked) neighbor.
    pub fn is_active_neighbor(&self, n: NodeId) -> bool {
        self.first_hop.get(&n) == Some(&NeighborStatus::Active)
    }

    /// Whether `n` has been revoked.
    pub fn is_revoked(&self, n: NodeId) -> bool {
        self.first_hop.get(&n) == Some(&NeighborStatus::Revoked)
    }

    /// Marks `n` as revoked. Unknown ids are recorded as revoked too, so
    /// that an alert about a not-yet-discovered node still takes effect.
    pub fn revoke(&mut self, n: NodeId) {
        self.first_hop.insert(n, NeighborStatus::Revoked);
    }

    /// Active neighbors in ascending id order.
    pub fn active_neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.first_hop
            .iter()
            .filter(|(_, &s)| s == NeighborStatus::Active)
            .map(|(&n, _)| n)
    }

    /// Count of known neighbors (active and revoked).
    pub fn len(&self) -> usize {
        self.first_hop.len()
    }

    /// Whether no neighbors are known.
    pub fn is_empty(&self) -> bool {
        self.first_hop.is_empty()
    }

    /// The stored neighbor list `R_b` of neighbor `b`, if announced.
    pub fn neighbor_list_of(&self, b: NodeId) -> Option<&BTreeSet<NodeId>> {
        self.second_hop.get(&b)
    }

    /// Whether a packet forwarded by `via` claiming previous hop `prev`
    /// is plausible: `via` must be an active neighbor and `prev` must be
    /// in `via`'s announced neighbor list (or be this node itself).
    ///
    /// This is the second-hop legitimacy check of Section 4.2.1: "If a
    /// node C receives a packet forwarded by B purporting to come from A
    /// in the previous hop, C discards the packet if A is not a second
    /// hop neighbor."
    pub fn link_plausible(&self, prev: NodeId, via: NodeId) -> bool {
        if !self.is_active_neighbor(via) {
            return false;
        }
        if prev == self.me {
            return true;
        }
        match self.second_hop.get(&via) {
            Some(list) => list.contains(&prev),
            None => false,
        }
    }

    /// Whether this node guards the link `prev → via`: it must neighbor
    /// both endpoints (the sender of a link trivially guards its own
    /// outgoing links), and the link itself must exist per the announced
    /// lists.
    pub fn is_guard_of(&self, prev: NodeId, via: NodeId) -> bool {
        if prev == via {
            return false;
        }
        let knows_prev = prev == self.me || self.is_neighbor(prev);
        let knows_via = via == self.me || self.is_neighbor(via);
        knows_prev && knows_via
    }

    /// Approximate storage footprint in bytes, matching the Section 5.2
    /// accounting: 5 bytes per first-hop entry (4-byte id + 1-byte MalC)
    /// plus 4 bytes per stored second-hop id.
    pub fn storage_bytes(&self) -> usize {
        let first = self.first_hop.len() * 5;
        let second: usize = self.second_hop.values().map(|s| s.len() * 4).sum();
        first + second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NeighborTable {
        let mut t = NeighborTable::new(NodeId(0));
        t.add_neighbor(NodeId(1));
        t.add_neighbor(NodeId(2));
        t.set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2), NodeId(5)]);
        t.set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1)]);
        t
    }

    #[test]
    fn membership_queries() {
        let t = table();
        assert!(t.is_neighbor(NodeId(1)));
        assert!(t.is_active_neighbor(NodeId(1)));
        assert!(!t.is_neighbor(NodeId(5)), "second hop is not first hop");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn revocation_excludes_from_active() {
        let mut t = table();
        t.revoke(NodeId(1));
        assert!(t.is_neighbor(NodeId(1)));
        assert!(!t.is_active_neighbor(NodeId(1)));
        assert!(t.is_revoked(NodeId(1)));
        assert_eq!(t.active_neighbors().collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn add_does_not_resurrect_revoked() {
        let mut t = table();
        t.revoke(NodeId(1));
        t.add_neighbor(NodeId(1));
        assert!(t.is_revoked(NodeId(1)));
    }

    #[test]
    fn revoking_unknown_node_sticks() {
        let mut t = table();
        t.revoke(NodeId(9));
        assert!(t.is_revoked(NodeId(9)));
        assert!(!t.is_active_neighbor(NodeId(9)));
    }

    #[test]
    fn link_plausibility() {
        let t = table();
        assert!(t.link_plausible(NodeId(5), NodeId(1)));
        assert!(t.link_plausible(NodeId(2), NodeId(1)));
        assert!(!t.link_plausible(NodeId(9), NodeId(1)), "9 not in R_1");
        assert!(!t.link_plausible(NodeId(5), NodeId(9)), "9 not my neighbor");
        // prev == me is always plausible (I know what I sent).
        assert!(t.link_plausible(NodeId(0), NodeId(2)));
    }

    #[test]
    fn link_plausible_rejects_revoked_via() {
        let mut t = table();
        t.revoke(NodeId(1));
        assert!(!t.link_plausible(NodeId(5), NodeId(1)));
    }

    #[test]
    fn link_without_announced_list_is_implausible() {
        let mut t = NeighborTable::new(NodeId(0));
        t.add_neighbor(NodeId(1));
        assert!(!t.link_plausible(NodeId(5), NodeId(1)));
    }

    #[test]
    fn guard_determination() {
        let t = table();
        // 0 neighbors both 1 and 2: guards the links between them.
        assert!(t.is_guard_of(NodeId(2), NodeId(1)));
        assert!(t.is_guard_of(NodeId(1), NodeId(2)));
        // Own outgoing links are guarded too.
        assert!(t.is_guard_of(NodeId(0), NodeId(1)));
        // Not a guard when one endpoint is unknown.
        assert!(!t.is_guard_of(NodeId(9), NodeId(1)));
        // Degenerate link.
        assert!(!t.is_guard_of(NodeId(1), NodeId(1)));
    }

    #[test]
    fn neighbor_list_rejected_from_stranger() {
        let mut t = table();
        assert!(!t.set_neighbor_list(NodeId(7), [NodeId(1)]));
        assert!(t.neighbor_list_of(NodeId(7)).is_none());
    }

    #[test]
    fn storage_accounting() {
        let t = table();
        // 2 first-hop entries * 5 + (3 + 2) second-hop ids * 4 = 30.
        assert_eq!(t.storage_bytes(), 30);
    }

    #[test]
    #[should_panic(expected = "not its own neighbor")]
    fn rejects_self_neighbor() {
        NeighborTable::new(NodeId(0)).add_neighbor(NodeId(0));
    }
}
