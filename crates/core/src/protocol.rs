//! The [`Liteworp`] facade: one object per node bundling neighbor
//! knowledge, discovery, local monitoring, alert handling, and the
//! admission checks the data path must apply.
//!
//! A host (the routing protocol node) wires it up as follows:
//!
//! * run discovery at deployment (or bootstrap tables directly);
//! * ask [`Liteworp::admit`] before accepting any packet;
//! * call [`Liteworp::observe_packet`] for every control packet overheard
//!   (including its own receptions — wireless reception *is* overhearing),
//!   and transmit an authenticated alert for every returned
//!   [`Effect::SendAlert`];
//! * call [`Liteworp::handle_alert`] for received alert messages;
//! * call [`Liteworp::expire`] on a periodic timer (≥ once per δ).

use crate::alert::{AlertBuffer, AlertOutcome};
use crate::config::{Config, InvalidConfig};
use crate::discovery::Discovery;
use crate::keys::{KeyStore, Mac};
use crate::monitor::{LocalMonitor, MonitorEvent, PacketObs};
use crate::neighbor::NeighborTable;
use crate::types::{Micros, Misbehavior, NodeId};

/// Why a packet was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The announced transmitter is not in the neighbor list at all —
    /// this is what stops high-power (mode 3) and relay (mode 4)
    /// wormholes.
    NotNeighbor,
    /// The announced transmitter has been revoked/isolated.
    Revoked,
    /// The announced previous hop is not a neighbor of the transmitter
    /// per stored second-hop knowledge — stops a colluder naming its
    /// distant partner as the previous hop.
    ImplausiblePrev,
}

/// Admission verdict for a received packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Process the packet.
    Accept,
    /// Discard the packet.
    Reject(RejectReason),
}

impl Admission {
    /// Whether the packet should be processed.
    pub fn is_accept(&self) -> bool {
        matches!(self, Admission::Accept)
    }
}

/// Disposition of a received alert message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertDisposition {
    /// γ distinct guards have now accused the suspect: it was isolated.
    Isolated,
    /// Counted; more accusations are needed.
    Counted,
    /// Ignored (already isolated, or a duplicate accuser).
    Ignored,
    /// Rejected: bad tag, unknown suspect, or the sender is not a
    /// plausible guard of the suspect.
    Rejected,
}

/// Side effects the host must perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Transmit an authenticated alert accusing `suspect` to `recipient`.
    SendAlert {
        /// Accused node.
        suspect: NodeId,
        /// Neighbor of the suspect to inform.
        recipient: NodeId,
        /// Tag binding (guard, suspect) under the pairwise key with the
        /// recipient.
        mac: Mac,
    },
    /// `suspect` is now isolated at this node (revoked everywhere the
    /// host keeps state; informational for metrics/trace).
    Isolated {
        /// The isolated node.
        suspect: NodeId,
    },
    /// Misbehavior was observed and counted (informational).
    Suspected {
        /// Misbehaving node.
        suspect: NodeId,
        /// What it did.
        kind: Misbehavior,
        /// Counter value after the increment.
        malc: u32,
    },
    /// Watch-buffer entries timed out unforwarded during this expiry
    /// sweep (informational; the drop charges, if any, arrive as
    /// [`Effect::Suspected`] in the same batch).
    WatchExpired {
        /// Entries that expired in this sweep (≥ 1).
        expired: u32,
    },
}

/// Per-node LITEWORP instance.
///
/// # Example
///
/// ```
/// use liteworp::prelude::*;
///
/// let keys = KeyStore::new(7, NodeId(0));
/// let mut lw = Liteworp::new(Config::default(), keys);
/// // Bootstrap: we neighbor 1 and 2; R_1 = {0, 2}; R_2 = {0, 1}.
/// lw.table_mut().add_neighbor(NodeId(1));
/// lw.table_mut().add_neighbor(NodeId(2));
/// lw.table_mut().set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2)]);
/// lw.table_mut().set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1)]);
///
/// // A packet from a stranger is refused outright.
/// assert_eq!(
///     lw.admit(NodeId(9), None),
///     Admission::Reject(RejectReason::NotNeighbor)
/// );
/// // A neighbor forwarding from a plausible previous hop is accepted.
/// assert_eq!(lw.admit(NodeId(1), Some(NodeId(2))), Admission::Accept);
/// ```
#[derive(Debug, Clone)]
pub struct Liteworp {
    config: Config,
    keys: KeyStore,
    table: NeighborTable,
    monitor: LocalMonitor,
    alerts: AlertBuffer,
    discovery: Discovery,
}

impl Liteworp {
    /// Creates the instance for the owner of `keys`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`Liteworp::try_new`] to handle the error instead.
    pub fn new(config: Config, keys: KeyStore) -> Self {
        // lint: allow(P002) documented panic; Self::try_new is the
        // fallible variant for callers with untrusted configs
        Self::try_new(config, keys).expect("invalid LITEWORP config")
    }

    /// Creates the instance, returning [`InvalidConfig`] instead of
    /// panicking when the configuration is inconsistent.
    pub fn try_new(config: Config, keys: KeyStore) -> Result<Self, InvalidConfig> {
        let monitor = LocalMonitor::try_new(config.clone())?;
        let me = keys.owner();
        Ok(Liteworp {
            monitor,
            alerts: AlertBuffer::new(config.confidence_index),
            table: NeighborTable::new(me),
            discovery: Discovery::new(keys),
            config,
            keys,
        })
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.keys.owner()
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Neighbor knowledge (read).
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Neighbor knowledge (write) — for oracle bootstrap in tests and
    /// experiments that skip message-level discovery.
    pub fn table_mut(&mut self) -> &mut NeighborTable {
        &mut self.table
    }

    /// The discovery state machine together with the table it populates.
    /// Host glue calls this to route discovery messages.
    pub fn discovery_mut(&mut self) -> (&mut Discovery, &mut NeighborTable) {
        (&mut self.discovery, &mut self.table)
    }

    /// The local monitor (read access, for diagnostics).
    pub fn monitor(&self) -> &LocalMonitor {
        &self.monitor
    }

    /// Admission check for a packet announced as transmitted by `sender`
    /// with previous hop `claimed_prev`.
    pub fn admit(&self, sender: NodeId, claimed_prev: Option<NodeId>) -> Admission {
        if self.table.is_revoked(sender) {
            return Admission::Reject(RejectReason::Revoked);
        }
        if !self.table.is_active_neighbor(sender) {
            return Admission::Reject(RejectReason::NotNeighbor);
        }
        if let Some(prev) = claimed_prev {
            if prev != sender && prev != self.id() {
                if self.table.is_revoked(prev) {
                    return Admission::Reject(RejectReason::Revoked);
                }
                if !self.table.link_plausible(prev, sender) {
                    return Admission::Reject(RejectReason::ImplausiblePrev);
                }
            }
        }
        Admission::Accept
    }

    /// Feeds one overheard control-packet transmission to the monitor.
    pub fn observe_packet(&mut self, obs: &PacketObs, now: Micros) -> Vec<Effect> {
        let events = self.monitor.observe(&mut self.table, obs, now);
        self.lower(events)
    }

    /// Waives `forwarder`'s pending forward obligation for `sig` — call
    /// when it broadcast a route error for that packet (data-plane
    /// monitoring extension).
    pub fn absolve(&mut self, forwarder: NodeId, sig: &crate::types::PacketSig) {
        self.monitor.absolve(forwarder, sig);
    }

    /// Records a local collision indication (see
    /// [`crate::monitor::LocalMonitor::note_collision`]).
    pub fn note_collision(&mut self, now: Micros) {
        self.monitor.note_collision(now);
    }

    /// Runs watch-buffer expiry (drop detection). Call at least once per
    /// watch timeout δ. When entries expired, the first effect is a
    /// single [`Effect::WatchExpired`] carrying the sweep's expiry count.
    pub fn expire(&mut self, now: Micros) -> Vec<Effect> {
        let before = self.monitor.watch_expiries();
        let events = self.monitor.expire(&mut self.table, now);
        let expired = self.monitor.watch_expiries() - before;
        let mut effects = self.lower(events);
        if expired > 0 {
            effects.insert(
                0,
                Effect::WatchExpired {
                    expired: expired.min(u32::MAX as u64) as u32,
                },
            );
        }
        effects
    }

    /// Canonical byte encoding of an alert, bound to the accusing guard
    /// and the suspect.
    pub fn alert_bytes(guard: NodeId, suspect: NodeId) -> Vec<u8> {
        let mut v = Vec::with_capacity(14);
        v.extend_from_slice(b"alert:");
        v.extend_from_slice(&guard.0.to_le_bytes());
        v.extend_from_slice(&suspect.0.to_le_bytes());
        v
    }

    /// Handles an alert from `guard` accusing `suspect`, authenticated by
    /// `mac` under the guard–us pairwise key.
    pub fn handle_alert(
        &mut self,
        guard: NodeId,
        suspect: NodeId,
        mac: Mac,
        _now: Micros,
    ) -> AlertDisposition {
        // Authenticity.
        if !self
            .keys
            .verify(guard, &Self::alert_bytes(guard, suspect), mac)
        {
            return AlertDisposition::Rejected;
        }
        // The suspect must be our neighbor (otherwise the alert is not
        // ours to act on) — unless we already isolated it.
        if self.alerts.is_isolated(suspect) {
            return AlertDisposition::Ignored;
        }
        if !self.table.is_neighbor(suspect) {
            return AlertDisposition::Rejected;
        }
        // The guard must plausibly guard the suspect: it must be in the
        // suspect's announced neighbor list.
        let plausible_guard = self
            .table
            .neighbor_list_of(suspect)
            .is_some_and(|l| l.contains(&guard));
        if !plausible_guard {
            return AlertDisposition::Rejected;
        }
        match self.alerts.record(suspect, guard) {
            AlertOutcome::Isolate => {
                self.table.revoke(suspect);
                self.monitor.note_external_suspicion(suspect);
                AlertDisposition::Isolated
            }
            AlertOutcome::Counted { .. } => {
                self.monitor.note_external_suspicion(suspect);
                AlertDisposition::Counted
            }
            AlertOutcome::Duplicate | AlertOutcome::AlreadyIsolated => AlertDisposition::Ignored,
        }
    }

    /// Whether this node has isolated `n` (either by its own accusation
    /// or by collecting γ alerts).
    pub fn is_isolated(&self, n: NodeId) -> bool {
        self.alerts.is_isolated(n) || self.table.is_revoked(n)
    }

    /// Total LITEWORP state footprint in bytes per the Section 5.2
    /// accounting (neighbor storage + watch buffer + alert buffer).
    pub fn storage_bytes(&self) -> usize {
        self.table.storage_bytes()
            + self.monitor.watch().storage_bytes()
            + self.alerts.storage_bytes()
    }

    fn lower(&mut self, events: Vec<MonitorEvent>) -> Vec<Effect> {
        let mut effects = Vec::new();
        for ev in events {
            match ev {
                MonitorEvent::Suspected {
                    suspect,
                    kind,
                    malc,
                } => effects.push(Effect::Suspected {
                    suspect,
                    kind,
                    malc,
                }),
                MonitorEvent::Accuse {
                    suspect,
                    recipients,
                } => {
                    self.alerts.force_isolate(suspect);
                    for recipient in recipients {
                        let mac = self
                            .keys
                            .tag(recipient, &Self::alert_bytes(self.id(), suspect));
                        effects.push(Effect::SendAlert {
                            suspect,
                            recipient,
                            mac,
                        });
                    }
                    effects.push(Effect::Isolated { suspect });
                }
            }
        }
        effects
    }
}

/// Convenience re-exports for hosts embedding LITEWORP.
pub mod prelude {
    pub use super::{Admission, AlertDisposition, Effect, Liteworp, RejectReason};
    pub use crate::config::Config;
    pub use crate::keys::{KeyStore, Mac};
    pub use crate::monitor::PacketObs;
    pub use crate::types::{Micros, Misbehavior, NodeId, PacketKind, PacketSig};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PacketKind, PacketSig};

    const SEED: u64 = 7;

    fn sig(seq: u64) -> PacketSig {
        PacketSig {
            kind: PacketKind::RouteRequest,
            origin: NodeId(10),
            target: NodeId(11),
            seq,
        }
    }

    /// Node 0 with neighbors 1, 2; R_1 = {0,2}; R_2 = {0,1,3}.
    fn instance() -> Liteworp {
        let mut lw = Liteworp::new(Config::default(), KeyStore::new(SEED, NodeId(0)));
        lw.table_mut().add_neighbor(NodeId(1));
        lw.table_mut().add_neighbor(NodeId(2));
        lw.table_mut()
            .set_neighbor_list(NodeId(1), [NodeId(0), NodeId(2)]);
        lw.table_mut()
            .set_neighbor_list(NodeId(2), [NodeId(0), NodeId(1), NodeId(3)]);
        lw
    }

    fn fabricated_forward(seq: u64) -> PacketObs {
        PacketObs {
            sender: NodeId(2),
            claimed_prev: Some(NodeId(1)),
            link_dst: None,
            sig: sig(seq),
            terminal: false,
        }
    }

    #[test]
    fn admission_matrix() {
        let lw = instance();
        assert!(lw.admit(NodeId(1), None).is_accept());
        assert!(lw.admit(NodeId(2), Some(NodeId(1))).is_accept());
        assert!(lw.admit(NodeId(2), Some(NodeId(3))).is_accept());
        assert_eq!(
            lw.admit(NodeId(9), None),
            Admission::Reject(RejectReason::NotNeighbor)
        );
        assert_eq!(
            lw.admit(NodeId(2), Some(NodeId(9))),
            Admission::Reject(RejectReason::ImplausiblePrev)
        );
    }

    #[test]
    fn fabrications_produce_signed_alerts_and_isolation() {
        let mut lw = instance();
        let e1 = lw.observe_packet(&fabricated_forward(1), Micros(0));
        assert_eq!(e1.len(), 1, "first fabrication only suspected");
        let e = lw.observe_packet(&fabricated_forward(2), Micros(2));
        assert_eq!(e.len(), 1, "not yet accused after two fabrications");
        let e2 = lw.observe_packet(&fabricated_forward(3), Micros(10));
        // Suspected + alerts to R_2 \ {0, 2} = {1, 3} + Isolated.
        let alerts: Vec<_> = e2
            .iter()
            .filter_map(|e| match e {
                Effect::SendAlert {
                    suspect, recipient, ..
                } => Some((*suspect, *recipient)),
                _ => None,
            })
            .collect();
        assert_eq!(alerts, vec![(NodeId(2), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(e2
            .iter()
            .any(|e| matches!(e, Effect::Isolated { suspect: NodeId(2) })));
        assert!(lw.is_isolated(NodeId(2)));
        assert_eq!(
            lw.admit(NodeId(2), None),
            Admission::Reject(RejectReason::Revoked)
        );
    }

    #[test]
    fn alerts_verify_and_isolate_at_gamma() {
        // Node 0 receives alerts about its neighbor 2 from guards 1 and 3.
        let mut lw = instance();
        let g1 = KeyStore::new(SEED, NodeId(1));
        let g3 = KeyStore::new(SEED, NodeId(3));
        let m1 = g1.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(1), NodeId(2)));
        let m3 = g3.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(3), NodeId(2)));
        assert_eq!(
            lw.handle_alert(NodeId(1), NodeId(2), m1, Micros(0)),
            AlertDisposition::Counted
        );
        // gamma = 2 by default: the second distinct guard isolates.
        assert_eq!(
            lw.handle_alert(NodeId(3), NodeId(2), m3, Micros(1)),
            AlertDisposition::Isolated
        );
        assert!(lw.is_isolated(NodeId(2)));
    }

    #[test]
    fn forged_alert_is_rejected() {
        let mut lw = instance();
        let outsider = KeyStore::new(999, NodeId(1));
        let bad = outsider.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(1), NodeId(2)));
        assert_eq!(
            lw.handle_alert(NodeId(1), NodeId(2), bad, Micros(0)),
            AlertDisposition::Rejected
        );
    }

    #[test]
    fn alert_about_non_neighbor_is_rejected() {
        let mut lw = instance();
        let g1 = KeyStore::new(SEED, NodeId(1));
        let mac = g1.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(1), NodeId(7)));
        assert_eq!(
            lw.handle_alert(NodeId(1), NodeId(7), mac, Micros(0)),
            AlertDisposition::Rejected
        );
    }

    #[test]
    fn alert_from_implausible_guard_is_rejected() {
        // Node 9 is not in R_2, so it cannot be guarding node 2.
        let mut lw = instance();
        let g9 = KeyStore::new(SEED, NodeId(9));
        let mac = g9.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(9), NodeId(2)));
        assert_eq!(
            lw.handle_alert(NodeId(9), NodeId(2), mac, Micros(0)),
            AlertDisposition::Rejected
        );
    }

    #[test]
    fn duplicate_accuser_is_ignored() {
        let mut lw = instance();
        let g1 = KeyStore::new(SEED, NodeId(1));
        let mac = g1.tag(NodeId(0), &Liteworp::alert_bytes(NodeId(1), NodeId(2)));
        assert_eq!(
            lw.handle_alert(NodeId(1), NodeId(2), mac, Micros(0)),
            AlertDisposition::Counted
        );
        assert_eq!(
            lw.handle_alert(NodeId(1), NodeId(2), mac, Micros(1)),
            AlertDisposition::Ignored
        );
        assert!(!lw.is_isolated(NodeId(2)));
    }

    #[test]
    fn drop_detection_flows_through_expire() {
        let mut lw = instance();
        // Node 1 unicasts a reply to node 2; 2 never forwards. V_d = 1,
        // C_t = 6: six drops isolate.
        for seq in 0..6u64 {
            let tx = PacketObs {
                sender: NodeId(1),
                claimed_prev: None,
                link_dst: Some(NodeId(2)),
                sig: PacketSig {
                    kind: PacketKind::RouteReply,
                    origin: NodeId(10),
                    target: NodeId(11),
                    seq,
                },
                terminal: false,
            };
            lw.observe_packet(&tx, Micros(seq * 1_000_000));
        }
        let effects = lw.expire(Micros(60_000_000));
        assert!(
            effects
                .iter()
                .any(|e| matches!(e, Effect::Isolated { suspect: NodeId(2) })),
            "six dropped replies should isolate: {effects:?}"
        );
        assert_eq!(
            effects.first(),
            Some(&Effect::WatchExpired { expired: 6 }),
            "the sweep reports its expiry count first: {effects:?}"
        );
    }

    #[test]
    fn storage_stays_small() {
        let lw = instance();
        // 2 first-hop entries (10 B) + 5 second-hop ids (20 B) = 30 B.
        assert_eq!(lw.storage_bytes(), 30);
    }
}
