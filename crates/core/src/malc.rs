//! Malicious counters (`MalC`, Section 4.2.1).
//!
//! Each guard node `i` maintains `MalC(i, j)` for every node `j` at the
//! receiving end of a link it monitors. The counter is incremented by
//! `V_f` for a fabricated packet and `V_d` for a dropped one; when it
//! crosses `C_t` the guard accuses `j`.
//!
//! An optional sliding window `T` makes contributions expire, matching the
//! analysis ("assume that packet fabrications occur within a certain time
//! window, T"). The paper's static-network deployment uses an unbounded
//! counter (window = 0).

use crate::types::{Micros, NodeId};
use std::collections::{BTreeMap, VecDeque};

/// Per-neighbor malicious counters with an optional sliding window.
///
/// # Example
///
/// ```
/// use liteworp::malc::MalcTable;
/// use liteworp::types::{Micros, NodeId};
///
/// let mut t = MalcTable::new(0); // no window: contributions never expire
/// assert_eq!(t.record(NodeId(9), 2, Micros(0)), 2);
/// assert_eq!(t.record(NodeId(9), 2, Micros(10)), 4);
/// assert_eq!(t.value(NodeId(9), Micros(1_000_000)), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MalcTable {
    window_us: u64,
    counters: BTreeMap<NodeId, VecDeque<(Micros, u32)>>,
}

impl MalcTable {
    /// Creates a table. `window_us == 0` disables expiry (the default
    /// static-network behavior); otherwise contributions older than the
    /// window are discarded.
    pub fn new(window_us: u64) -> Self {
        MalcTable {
            window_us,
            counters: BTreeMap::new(),
        }
    }

    /// Adds a contribution of `weight` against `node` at time `now` and
    /// returns the counter's new value.
    pub fn record(&mut self, node: NodeId, weight: u32, now: Micros) -> u32 {
        let log = self.counters.entry(node).or_default();
        log.push_back((now, weight));
        Self::trim(log, self.window_us, now);
        log.iter().map(|&(_, w)| w).sum()
    }

    /// Current counter value for `node` at time `now`.
    pub fn value(&self, node: NodeId, now: Micros) -> u32 {
        match self.counters.get(&node) {
            None => 0,
            Some(log) => {
                if self.window_us == 0 {
                    log.iter().map(|&(_, w)| w).sum()
                } else {
                    let cutoff = now.0.saturating_sub(self.window_us);
                    log.iter()
                        .filter(|&&(t, _)| t.0 >= cutoff)
                        .map(|&(_, w)| w)
                        .sum()
                }
            }
        }
    }

    /// Clears the counter for `node` (used after the node is revoked —
    /// its entry no longer needs tracking).
    pub fn clear(&mut self, node: NodeId) {
        self.counters.remove(&node);
    }

    /// Nodes with a nonzero counter, in ascending id order.
    pub fn suspects(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.counters
            .iter()
            .filter(|(_, log)| !log.is_empty())
            .map(|(&n, _)| n)
    }

    fn trim(log: &mut VecDeque<(Micros, u32)>, window_us: u64, now: Micros) {
        if window_us == 0 {
            return;
        }
        let cutoff = now.0.saturating_sub(window_us);
        while log.front().is_some_and(|&(t, _)| t.0 < cutoff) {
            log.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_counters_accumulate_forever() {
        let mut t = MalcTable::new(0);
        for i in 0..10 {
            t.record(NodeId(1), 1, Micros(i * 1_000_000));
        }
        assert_eq!(t.value(NodeId(1), Micros(u64::MAX)), 10);
    }

    #[test]
    fn windowed_counters_forget_old_contributions() {
        let mut t = MalcTable::new(1_000_000); // 1 s window
        t.record(NodeId(1), 3, Micros(0));
        assert_eq!(t.record(NodeId(1), 2, Micros(500_000)), 5);
        // At t = 1.4 s the first contribution (t=0) has aged out.
        assert_eq!(t.record(NodeId(1), 1, Micros(1_400_000)), 3);
        assert_eq!(t.value(NodeId(1), Micros(1_400_000)), 3);
    }

    #[test]
    fn value_applies_window_without_mutation() {
        let mut t = MalcTable::new(1_000_000);
        t.record(NodeId(1), 4, Micros(0));
        assert_eq!(t.value(NodeId(1), Micros(2_000_000)), 0);
        // Still 4 when asked about a time inside the window.
        assert_eq!(t.value(NodeId(1), Micros(900_000)), 4);
    }

    #[test]
    fn counters_are_per_node() {
        let mut t = MalcTable::new(0);
        t.record(NodeId(1), 2, Micros(0));
        t.record(NodeId(2), 5, Micros(0));
        assert_eq!(t.value(NodeId(1), Micros(0)), 2);
        assert_eq!(t.value(NodeId(2), Micros(0)), 5);
        assert_eq!(t.value(NodeId(3), Micros(0)), 0);
        assert_eq!(t.suspects().collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn clear_resets() {
        let mut t = MalcTable::new(0);
        t.record(NodeId(1), 2, Micros(0));
        t.clear(NodeId(1));
        assert_eq!(t.value(NodeId(1), Micros(0)), 0);
        assert_eq!(t.suspects().count(), 0);
    }
}
