//! Pairwise keys and message authentication.
//!
//! LITEWORP assumes a pre-distributed pairwise key management scheme
//! (Section 4.1, the paper's refs 18–20); keys are used only to authenticate
//! neighbor-discovery replies and alert messages. This module provides a
//! **simulation-grade** stand-in:
//!
//! * [`KeyStore`] derives a deterministic 64-bit pairwise key for any node
//!   pair from a network-wide seed, modelling the post-bootstrap state of a
//!   key-predistribution scheme.
//! * [`Mac`] tags are 64-bit keyed hashes (an FNV-1a–based construction).
//!
//! # Security disclaimer
//!
//! This is **not** cryptographically secure — the keyed hash is trivially
//! forgeable by cryptanalysis. It is sufficient here because the paper's
//! adversary either holds the keys (insiders, who can produce valid tags
//! anyway) or holds none (outsiders, modelled as not attempting forgery).
//! The code paths exercised — tag-on-send, verify-or-reject on receive —
//! are the same as with a real MAC.

use crate::types::NodeId;

/// A 64-bit message authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac(pub u64);

/// A pairwise symmetric key (simulation-grade, 64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairwiseKey(u64);

/// Derives pairwise keys and computes/verifies tags.
///
/// Each node holds a `KeyStore` with the shared network seed and its own
/// identity; outsider nodes (no seed) simply cannot construct one that
/// matches, modelling their lack of keys.
///
/// # Example
///
/// ```
/// use liteworp::keys::KeyStore;
/// use liteworp::types::NodeId;
///
/// let a = KeyStore::new(42, NodeId(1));
/// let b = KeyStore::new(42, NodeId(2));
/// let tag = a.tag(NodeId(2), b"hello");
/// assert!(b.verify(NodeId(1), b"hello", tag));
/// assert!(!b.verify(NodeId(1), b"tampered", tag));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyStore {
    seed: u64,
    me: NodeId,
}

impl KeyStore {
    /// Creates the key store for node `me` with the shared network seed.
    pub fn new(seed: u64, me: NodeId) -> Self {
        KeyStore { seed, me }
    }

    /// This store's owner.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// The pairwise key shared between this node and `peer`.
    ///
    /// Symmetric: `K(a, b) == K(b, a)`.
    pub fn pairwise(&self, peer: NodeId) -> PairwiseKey {
        let (lo, hi) = if self.me.0 <= peer.0 {
            (self.me.0, peer.0)
        } else {
            (peer.0, self.me.0)
        };
        let mut h = Hasher::new(self.seed);
        h.write_u64(0x6b65795f70616972); // "key_pair"
        h.write_u64(lo as u64);
        h.write_u64(hi as u64);
        PairwiseKey(h.finish())
    }

    /// Computes the authentication tag for `message` under the key shared
    /// with `peer`.
    pub fn tag(&self, peer: NodeId, message: &[u8]) -> Mac {
        let key = self.pairwise(peer);
        let mut h = Hasher::new(key.0);
        h.write_bytes(message);
        Mac(h.finish())
    }

    /// Verifies a tag allegedly produced by `peer` over `message`.
    pub fn verify(&self, peer: NodeId, message: &[u8], mac: Mac) -> bool {
        self.tag(peer, message) == mac
    }
}

/// FNV-1a–based 64-bit keyed hash (simulation grade).
struct Hasher {
    state: u64,
}

impl Hasher {
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new(key: u64) -> Self {
        // Mix the key into the offset basis.
        let mut h = Hasher {
            state: 0xcbf2_9ce4_8422_2325,
        };
        h.write_u64(key);
        h
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        // Length strengthening.
        self.write_u64(bytes.len() as u64);
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 finalizer).
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_keys_are_symmetric() {
        let a = KeyStore::new(7, NodeId(1));
        let b = KeyStore::new(7, NodeId(2));
        assert_eq!(a.pairwise(NodeId(2)), b.pairwise(NodeId(1)));
    }

    #[test]
    fn distinct_pairs_get_distinct_keys() {
        let a = KeyStore::new(7, NodeId(1));
        assert_ne!(a.pairwise(NodeId(2)), a.pairwise(NodeId(3)));
    }

    #[test]
    fn different_seeds_give_different_keys() {
        let a = KeyStore::new(7, NodeId(1));
        let b = KeyStore::new(8, NodeId(1));
        assert_ne!(a.pairwise(NodeId(2)), b.pairwise(NodeId(2)));
    }

    #[test]
    fn tags_verify_and_reject() {
        let a = KeyStore::new(7, NodeId(1));
        let b = KeyStore::new(7, NodeId(2));
        let tag = a.tag(NodeId(2), b"alert: n9 is a wormhole");
        assert!(b.verify(NodeId(1), b"alert: n9 is a wormhole", tag));
        assert!(!b.verify(NodeId(1), b"alert: n8 is a wormhole", tag));
        // A third party's key does not verify.
        let c = KeyStore::new(7, NodeId(3));
        assert!(!c.verify(NodeId(1), b"alert: n9 is a wormhole", tag));
    }

    #[test]
    fn outsider_without_seed_cannot_forge() {
        let honest = KeyStore::new(7, NodeId(1));
        let outsider = KeyStore::new(999, NodeId(2)); // wrong seed = no keys
        let forged = outsider.tag(NodeId(1), b"msg");
        assert!(!honest.verify(NodeId(2), b"msg", forged));
    }

    #[test]
    fn tag_depends_on_message_length() {
        let a = KeyStore::new(7, NodeId(1));
        assert_ne!(a.tag(NodeId(2), b""), a.tag(NodeId(2), b"\0"));
    }

    #[test]
    fn owner_is_recorded() {
        assert_eq!(KeyStore::new(1, NodeId(5)).owner(), NodeId(5));
    }
}
