//! Secure one-time neighbor discovery (Section 4.2.1, "Building Neighbor
//! Lists").
//!
//! On deployment a node `A`:
//!
//! 1. one-hop broadcasts a `HELLO`;
//! 2. collects authenticated replies until a host-driven timeout, adding
//!    each verified replier to its neighbor list `R_A`;
//! 3. one-hop broadcasts `R_A`, authenticated individually to each member
//!    with the pairwise shared key.
//!
//! A node `B` hearing the announcement verifies its own tag; if it
//! verifies and `B ∈ R_A`, then `B` records `A` as a first-hop neighbor
//! and stores `R_A` as second-hop knowledge. Plain `HELLO`s are
//! unauthenticated and never grant neighbor status by themselves — that is
//! what blocks an outsider from talking its way into a neighbor list.
//!
//! The state machine is sans-IO: methods return [`DiscoveryOut`] values
//! the host turns into radio frames, and the host decides when the
//! collection timeout elapses (calling [`Discovery::announce`]).

use crate::keys::{KeyStore, Mac};
use crate::neighbor::NeighborTable;
use crate::types::NodeId;

/// Messages exchanged during neighbor discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryMsg {
    /// Unauthenticated presence announcement.
    Hello,
    /// Authenticated reply to a `Hello`.
    HelloReply {
        /// Tag over the (replier, announcer) handshake.
        mac: Mac,
    },
    /// The announcer's neighbor list, tagged per member.
    ListAnnounce {
        /// The announced `R_A`.
        list: Vec<NodeId>,
        /// One `(member, tag)` per member of the list.
        tags: Vec<(NodeId, Mac)>,
    },
    /// A late-deployed node asking its freshly discovered neighbors to
    /// re-announce their neighbor lists (the incremental-deployment /
    /// mobility hook of Section 7: "incremental deployment of a node in
    /// the network is identical to having a mobile node move to its
    /// location").
    ListRequest,
}

/// A message the host must transmit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryOut {
    /// One-hop broadcast.
    Broadcast(DiscoveryMsg),
    /// Unicast to a specific neighbor.
    Unicast(NodeId, DiscoveryMsg),
}

/// Discovery phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Not started.
    Idle,
    /// `HELLO` sent; collecting replies.
    Collecting,
    /// Neighbor list announced; discovery complete.
    Announced,
}

/// The per-node discovery state machine.
///
/// # Example
///
/// Two nodes discovering each other (host glue inlined):
///
/// ```
/// use liteworp::discovery::{Discovery, DiscoveryMsg, DiscoveryOut};
/// use liteworp::keys::KeyStore;
/// use liteworp::neighbor::NeighborTable;
/// use liteworp::types::NodeId;
///
/// let (a_id, b_id) = (NodeId(0), NodeId(1));
/// let mut a = Discovery::new(KeyStore::new(7, a_id));
/// let mut b = Discovery::new(KeyStore::new(7, b_id));
/// let mut ta = NeighborTable::new(a_id);
/// let mut tb = NeighborTable::new(b_id);
///
/// a.begin();                                   // A broadcasts HELLO
/// let reply = b.on_hello(a_id);                // B replies (authenticated)
/// let DiscoveryOut::Unicast(_, DiscoveryMsg::HelloReply { mac }) = reply else { panic!() };
/// assert!(a.on_hello_reply(&mut ta, b_id, mac));
/// let ann = a.announce(&ta);                   // collection timeout
/// let DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { list, tags }) = ann else { panic!() };
/// assert!(b.on_list_announce(&mut tb, a_id, &list, &tags));
/// assert!(ta.is_active_neighbor(b_id));
/// assert!(tb.is_active_neighbor(a_id));
/// ```
#[derive(Debug, Clone)]
pub struct Discovery {
    keys: KeyStore,
    phase: Phase,
}

impl Discovery {
    /// Creates the state machine for the owner of `keys`.
    pub fn new(keys: KeyStore) -> Self {
        Discovery {
            keys,
            phase: Phase::Idle,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Starts discovery: returns the `HELLO` broadcast.
    ///
    /// # Panics
    ///
    /// Panics if discovery already started (it is one-time per the paper's
    /// static-network model; re-deployment constructs a fresh machine).
    pub fn begin(&mut self) -> DiscoveryOut {
        assert_eq!(self.phase, Phase::Idle, "discovery is one-time");
        self.phase = Phase::Collecting;
        DiscoveryOut::Broadcast(DiscoveryMsg::Hello)
    }

    /// Handles a `HELLO` from `announcer`: produces the authenticated
    /// reply. Stateless — a node replies to HELLOs in any phase.
    pub fn on_hello(&self, announcer: NodeId) -> DiscoveryOut {
        let mac = self
            .keys
            .tag(announcer, &reply_bytes(self.keys.owner(), announcer));
        DiscoveryOut::Unicast(announcer, DiscoveryMsg::HelloReply { mac })
    }

    /// Handles a reply to our `HELLO`. Returns whether the replier was
    /// verified and added to the table.
    pub fn on_hello_reply(&mut self, table: &mut NeighborTable, from: NodeId, mac: Mac) -> bool {
        if self.phase != Phase::Collecting {
            return false;
        }
        if from == self.keys.owner() {
            return false;
        }
        if !self
            .keys
            .verify(from, &reply_bytes(from, self.keys.owner()), mac)
        {
            return false;
        }
        table.add_neighbor(from);
        true
    }

    /// Ends the collection window: returns the authenticated neighbor-list
    /// announcement.
    ///
    /// # Panics
    ///
    /// Panics unless called exactly once, after [`Discovery::begin`].
    pub fn announce(&mut self, table: &NeighborTable) -> DiscoveryOut {
        assert_eq!(self.phase, Phase::Collecting, "announce follows begin");
        self.phase = Phase::Announced;
        let list: Vec<NodeId> = table.active_neighbors().collect();
        let me = self.keys.owner();
        let body = list_bytes(me, &list);
        let tags = list
            .iter()
            .map(|&member| (member, self.keys.tag(member, &body)))
            .collect();
        DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { list, tags })
    }

    /// Handles a `ListRequest` from a late joiner: if the requester is a
    /// verified neighbor, produce a unicast re-announcement of our list so
    /// the joiner gains second-hop knowledge of our neighborhood. Returns
    /// `None` for strangers (an outsider cannot farm topology this way).
    pub fn on_list_request(&self, table: &NeighborTable, from: NodeId) -> Option<DiscoveryOut> {
        if !table.is_active_neighbor(from) {
            return None;
        }
        let list: Vec<NodeId> = table.active_neighbors().collect();
        let me = self.keys.owner();
        let body = list_bytes(me, &list);
        let tags = vec![(from, self.keys.tag(from, &body))];
        Some(DiscoveryOut::Unicast(
            from,
            DiscoveryMsg::ListAnnounce { list, tags },
        ))
    }

    /// Handles a neighbor-list announcement from `from`. On successful
    /// verification (our tag verifies and we are in the list), records
    /// `from` as a first-hop neighbor and stores `R_from`. Returns whether
    /// the announcement was accepted.
    pub fn on_list_announce(
        &mut self,
        table: &mut NeighborTable,
        from: NodeId,
        list: &[NodeId],
        tags: &[(NodeId, Mac)],
    ) -> bool {
        let me = self.keys.owner();
        if from == me {
            return false;
        }
        let Some(&(_, mac)) = tags.iter().find(|(member, _)| *member == me) else {
            return false;
        };
        if !list.contains(&me) {
            return false;
        }
        if !self.keys.verify(from, &list_bytes(from, list), mac) {
            return false;
        }
        if table.is_revoked(from) {
            return false;
        }
        table.add_neighbor(from);
        table.set_neighbor_list(from, list.iter().copied());
        true
    }
}

fn reply_bytes(replier: NodeId, announcer: NodeId) -> Vec<u8> {
    let mut v = Vec::with_capacity(17);
    v.extend_from_slice(b"hello-reply:");
    v.extend_from_slice(&replier.0.to_le_bytes());
    v.extend_from_slice(&announcer.0.to_le_bytes());
    v
}

fn list_bytes(owner: NodeId, list: &[NodeId]) -> Vec<u8> {
    let mut v = Vec::with_capacity(10 + 4 * list.len());
    v.extend_from_slice(b"nlist:");
    v.extend_from_slice(&owner.0.to_le_bytes());
    for id in list {
        v.extend_from_slice(&id.0.to_le_bytes());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 7;

    fn node(id: u32) -> (Discovery, NeighborTable) {
        (
            Discovery::new(KeyStore::new(SEED, NodeId(id))),
            NeighborTable::new(NodeId(id)),
        )
    }

    fn run_handshake(
        a: &mut Discovery,
        ta: &mut NeighborTable,
        b: &mut Discovery,
        tb: &mut NeighborTable,
    ) {
        a.begin();
        let DiscoveryOut::Unicast(to, DiscoveryMsg::HelloReply { mac }) = b.on_hello(ta.owner())
        else {
            panic!("expected reply");
        };
        assert_eq!(to, ta.owner());
        assert!(a.on_hello_reply(ta, tb.owner(), mac));
        let DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { list, tags }) = a.announce(ta)
        else {
            panic!("expected announce");
        };
        assert!(b.on_list_announce(tb, ta.owner(), &list, &tags));
    }

    #[test]
    fn full_handshake_builds_both_tables() {
        let (mut a, mut ta) = node(0);
        let (mut b, mut tb) = node(1);
        run_handshake(&mut a, &mut ta, &mut b, &mut tb);
        assert!(ta.is_active_neighbor(NodeId(1)));
        assert!(tb.is_active_neighbor(NodeId(0)));
        assert!(tb
            .neighbor_list_of(NodeId(0))
            .is_some_and(|l| l.contains(&NodeId(1))));
        assert_eq!(a.phase(), Phase::Announced);
    }

    #[test]
    fn forged_hello_reply_is_rejected() {
        let (mut a, mut ta) = node(0);
        a.begin();
        // An outsider with the wrong seed cannot produce a valid tag.
        let outsider = KeyStore::new(999, NodeId(5));
        let forged = outsider.tag(NodeId(0), &reply_bytes(NodeId(5), NodeId(0)));
        assert!(!a.on_hello_reply(&mut ta, NodeId(5), forged));
        assert!(ta.is_empty());
    }

    #[test]
    fn replies_outside_collection_window_are_ignored() {
        let (mut a, mut ta) = node(0);
        let (b, _tb) = node(1);
        // Never called begin(): phase is Idle.
        let DiscoveryOut::Unicast(_, DiscoveryMsg::HelloReply { mac }) = b.on_hello(NodeId(0))
        else {
            panic!()
        };
        assert!(!a.on_hello_reply(&mut ta, NodeId(1), mac));
        // After announce the window is closed too.
        a.begin();
        a.announce(&ta);
        assert!(!a.on_hello_reply(&mut ta, NodeId(1), mac));
    }

    #[test]
    fn announcement_without_me_is_ignored() {
        let (mut a, mut ta) = node(0);
        let (mut c, mut tc) = node(2);
        // A discovers only node 1, then announces. Node 2 overhears but is
        // not in the list: it must not adopt A.
        let (b, _) = node(1);
        a.begin();
        let DiscoveryOut::Unicast(_, DiscoveryMsg::HelloReply { mac }) = b.on_hello(NodeId(0))
        else {
            panic!()
        };
        assert!(a.on_hello_reply(&mut ta, NodeId(1), mac));
        let DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { list, tags }) = a.announce(&ta)
        else {
            panic!()
        };
        assert!(!c.on_list_announce(&mut tc, NodeId(0), &list, &tags));
        assert!(tc.is_empty());
    }

    #[test]
    fn tampered_list_fails_verification() {
        let (mut a, mut ta) = node(0);
        let (mut b, mut tb) = node(1);
        a.begin();
        let DiscoveryOut::Unicast(_, DiscoveryMsg::HelloReply { mac }) = b.on_hello(NodeId(0))
        else {
            panic!()
        };
        assert!(a.on_hello_reply(&mut ta, NodeId(1), mac));
        let DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { mut list, tags }) =
            a.announce(&ta)
        else {
            panic!()
        };
        // A wormhole relay injects an extra "neighbor" into the list.
        list.push(NodeId(9));
        assert!(!b.on_list_announce(&mut tb, NodeId(0), &list, &tags));
        assert!(tb.is_empty());
    }

    #[test]
    fn revoked_announcer_is_not_readopted() {
        let (mut a, mut ta) = node(0);
        let (mut b, mut tb) = node(1);
        tb.revoke(NodeId(0));
        a.begin();
        let DiscoveryOut::Unicast(_, DiscoveryMsg::HelloReply { mac }) = b.on_hello(NodeId(0))
        else {
            panic!()
        };
        assert!(a.on_hello_reply(&mut ta, NodeId(1), mac));
        let DiscoveryOut::Broadcast(DiscoveryMsg::ListAnnounce { list, tags }) = a.announce(&ta)
        else {
            panic!()
        };
        assert!(!b.on_list_announce(&mut tb, NodeId(0), &list, &tags));
        assert!(tb.is_revoked(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "one-time")]
    fn begin_twice_panics() {
        let (mut a, _) = node(0);
        a.begin();
        a.begin();
    }
}
