//! Property-based tests of the LITEWORP core invariants, driven by the
//! in-repo deterministic PCG32 generator: each test checks its property
//! over many randomized cases from a fixed seed, so failures reproduce
//! exactly.

use liteworp::alert::{AlertBuffer, AlertOutcome};
use liteworp::config::Config;
use liteworp::keys::KeyStore;
use liteworp::malc::MalcTable;
use liteworp::neighbor::NeighborTable;
use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
use liteworp::watch::WatchBuffer;
use liteworp_runner::rng::{Pcg32, Rng};

const CASES: u64 = 64;

fn arb_node(rng: &mut Pcg32) -> NodeId {
    NodeId(rng.gen_range(0u32..32))
}

fn distinct_nodes<const N: usize>(rng: &mut Pcg32) -> [NodeId; N] {
    loop {
        let picks: Vec<NodeId> = (0..N).map(|_| arb_node(rng)).collect();
        let set: std::collections::BTreeSet<_> = picks.iter().collect();
        if set.len() == N {
            return picks.try_into().unwrap();
        }
    }
}

fn arb_sig(rng: &mut Pcg32) -> PacketSig {
    PacketSig {
        kind: if rng.gen_bool(0.5) {
            PacketKind::RouteRequest
        } else {
            PacketKind::RouteReply
        },
        origin: arb_node(rng),
        target: arb_node(rng),
        seq: rng.gen_range(0u64..1000),
    }
}

fn arb_bytes(rng: &mut Pcg32, min: usize, max: usize) -> Vec<u8> {
    let len = rng.gen_range(min..max);
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

// ----------------------------------------------------------------------
// Keys: tags verify iff key, peer and message all match.
// ----------------------------------------------------------------------

#[test]
fn mac_round_trip() {
    let mut rng = Pcg32::seed_from_u64(0x6d61_6331);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let [a, b] = distinct_nodes(&mut rng);
        let msg = arb_bytes(&mut rng, 0, 64);
        let ka = KeyStore::new(seed, a);
        let kb = KeyStore::new(seed, b);
        let tag = ka.tag(b, &msg);
        assert!(kb.verify(a, &msg, tag));
    }
}

#[test]
fn mac_rejects_tampering() {
    let mut rng = Pcg32::seed_from_u64(0x6d61_6332);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let [a, b] = distinct_nodes(&mut rng);
        let msg = arb_bytes(&mut rng, 1, 64);
        let ka = KeyStore::new(seed, a);
        let kb = KeyStore::new(seed, b);
        let tag = ka.tag(b, &msg);
        let mut tampered = msg.clone();
        let idx = rng.gen_range(0usize..tampered.len().max(1));
        tampered[idx] ^= 0x01;
        assert!(!kb.verify(a, &tampered, tag));
    }
}

#[test]
fn mac_is_peer_bound() {
    let mut rng = Pcg32::seed_from_u64(0x6d61_6333);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let [a, b, c] = distinct_nodes(&mut rng);
        let msg = arb_bytes(&mut rng, 0, 32);
        let ka = KeyStore::new(seed, a);
        let kc = KeyStore::new(seed, c);
        let tag = ka.tag(b, &msg);
        // c cannot verify a tag meant for the (a, b) pair.
        assert!(!kc.verify(a, &msg, tag));
    }
}

// ----------------------------------------------------------------------
// Watch buffer: no forwarder that forwarded in time is ever accused, and
// capacity is never exceeded.
// ----------------------------------------------------------------------

#[test]
fn watch_never_accuses_timely_forwarders() {
    let mut rng = Pcg32::seed_from_u64(0x7761_7401);
    for _ in 0..CASES {
        let [prev, fwd] = distinct_nodes(&mut rng);
        let n = rng.gen_range(1usize..20);
        let sigs: Vec<PacketSig> = (0..n).map(|_| arb_sig(&mut rng)).collect();
        let mut buf = WatchBuffer::new(64);
        for (i, sig) in sigs.iter().enumerate() {
            buf.note_transmission(prev, *sig, Some(fwd), Micros(1000 + i as u64));
        }
        for sig in &sigs {
            buf.confirm_forward(prev, sig, fwd);
        }
        let accused = buf.expire(Micros(u64::MAX));
        assert!(accused.is_empty(), "accused: {accused:?}");
    }
}

#[test]
fn watch_accuses_exactly_the_unforwarded() {
    let mut rng = Pcg32::seed_from_u64(0x7761_7402);
    for _ in 0..CASES {
        let [prev, fwd] = distinct_nodes(&mut rng);
        let n = rng.gen_range(1usize..20);
        // Deduplicate signatures so expectations are unambiguous.
        let mut seen = std::collections::HashSet::new();
        let sigs: Vec<(PacketSig, bool)> = (0..n)
            .map(|_| (arb_sig(&mut rng), rng.gen_bool(0.5)))
            .filter(|(s, _)| seen.insert(*s))
            .collect();
        let mut buf = WatchBuffer::new(sigs.len().max(1));
        for (sig, _) in &sigs {
            buf.note_transmission(prev, *sig, Some(fwd), Micros(1000));
        }
        for (sig, forwarded) in &sigs {
            if *forwarded {
                buf.confirm_forward(prev, sig, fwd);
            }
        }
        let accused = buf.expire(Micros(2000));
        let expected: usize = sigs.iter().filter(|(_, f)| !f).count();
        assert_eq!(accused.len(), expected);
        assert!(accused.iter().all(|(n, _, _)| *n == fwd));
    }
}

#[test]
fn watch_respects_capacity() {
    let mut rng = Pcg32::seed_from_u64(0x7761_7403);
    for _ in 0..CASES {
        let cap = rng.gen_range(1usize..16);
        let n = rng.gen_range(0usize..64);
        let mut buf = WatchBuffer::new(cap);
        for i in 0..n {
            let (prev, sig) = (arb_node(&mut rng), arb_sig(&mut rng));
            buf.note_transmission(prev, sig, None, Micros(i as u64 + 1));
            assert!(buf.len() <= cap);
        }
    }
}

// ----------------------------------------------------------------------
// MalC: windowed value never exceeds unbounded value; totals add up.
// ----------------------------------------------------------------------

#[test]
fn windowed_malc_is_bounded_by_unbounded() {
    let mut rng = Pcg32::seed_from_u64(0x6d61_6c63);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..30);
        let mut events: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.gen_range(0u64..1_000_000), rng.gen_range(1u32..5)))
            .collect();
        let window = rng.gen_range(1u64..500_000);
        let mut unbounded = MalcTable::new(0);
        let mut windowed = MalcTable::new(window);
        let node = NodeId(1);
        events.sort_by_key(|e| e.0);
        for (t, w) in &events {
            unbounded.record(node, *w, Micros(*t));
            windowed.record(node, *w, Micros(*t));
        }
        let now = Micros(events.last().unwrap().0);
        assert!(windowed.value(node, now) <= unbounded.value(node, now));
        let total: u32 = events.iter().map(|(_, w)| w).sum();
        assert_eq!(unbounded.value(node, now), total);
    }
}

// ----------------------------------------------------------------------
// Alert buffer: isolation happens exactly at γ distinct accusers.
// ----------------------------------------------------------------------

#[test]
fn alerts_isolate_exactly_at_gamma() {
    let mut rng = Pcg32::seed_from_u64(0x616c_7274);
    for _ in 0..CASES {
        let gamma = rng.gen_range(1usize..6);
        let n = rng.gen_range(1usize..20);
        let accusers: Vec<NodeId> = (0..n).map(|_| arb_node(&mut rng)).collect();
        let mut buf = AlertBuffer::new(gamma);
        let suspect = NodeId(99);
        let mut distinct = std::collections::BTreeSet::new();
        for g in &accusers {
            let before = distinct.len();
            distinct.insert(*g);
            let outcome = buf.record(suspect, *g);
            match outcome {
                AlertOutcome::Isolate => assert_eq!(distinct.len(), gamma),
                AlertOutcome::Counted { got, needed } => {
                    assert_eq!(needed, gamma);
                    assert_eq!(got, distinct.len());
                    assert!(got < gamma);
                }
                AlertOutcome::Duplicate => assert_eq!(distinct.len(), before),
                AlertOutcome::AlreadyIsolated => assert!(distinct.len() >= gamma),
            }
        }
        assert_eq!(buf.is_isolated(suspect), distinct.len() >= gamma);
    }
}

// ----------------------------------------------------------------------
// Neighbor table: revocation is sticky and excludes from all queries.
// ----------------------------------------------------------------------

#[test]
fn revocation_is_sticky() {
    let mut rng = Pcg32::seed_from_u64(0x7265_766f);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..10);
        let neighbors: std::collections::BTreeSet<u32> =
            (0..n).map(|_| rng.gen_range(1u32..32)).collect();
        let mut t = NeighborTable::new(NodeId(0));
        let ids: Vec<NodeId> = neighbors.iter().map(|&n| NodeId(n)).collect();
        for &n in &ids {
            t.add_neighbor(n);
        }
        let victim = *rng.choose(&ids).expect("non-empty");
        t.revoke(victim);
        t.add_neighbor(victim); // must not resurrect
        assert!(t.is_revoked(victim));
        assert!(!t.is_active_neighbor(victim));
        assert!(t.active_neighbors().all(|n| n != victim));
        assert!(!t.link_plausible(NodeId(0), victim));
    }
}

#[test]
fn link_plausibility_is_consistent_with_stored_lists() {
    let mut rng = Pcg32::seed_from_u64(0x6c69_6e6b);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..10);
        let list: std::collections::BTreeSet<u32> =
            (0..n).map(|_| rng.gen_range(2u32..32)).collect();
        let probe = rng.gen_range(2u32..32);
        let mut t = NeighborTable::new(NodeId(0));
        t.add_neighbor(NodeId(1));
        t.set_neighbor_list(NodeId(1), list.iter().map(|&n| NodeId(n)));
        let expected = list.contains(&probe);
        assert_eq!(t.link_plausible(NodeId(probe), NodeId(1)), expected);
    }
}

// ----------------------------------------------------------------------
// Config: accusation counts are consistent with the weights.
// ----------------------------------------------------------------------

#[test]
fn accusation_counts_cover_threshold() {
    let mut rng = Pcg32::seed_from_u64(0x6366_6721);
    for _ in 0..CASES {
        let vf = rng.gen_range(1u32..10);
        let vd = rng.gen_range(1u32..10);
        let ct = rng.gen_range(1u32..50);
        let cfg = Config {
            fabrication_weight: vf,
            drop_weight: vd,
            malc_threshold: ct,
            ..Config::default()
        };
        // k events of weight w must reach the threshold, k-1 must not.
        let k = cfg.fabrications_to_accuse();
        assert!(k * vf >= ct);
        assert!(k == 0 || (k - 1) * vf < ct);
        let kd = cfg.drops_to_accuse();
        assert!(kd * vd >= ct);
        assert!(kd == 0 || (kd - 1) * vd < ct);
    }
}
