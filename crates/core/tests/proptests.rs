//! Property-based tests of the LITEWORP core invariants.

use liteworp::alert::{AlertBuffer, AlertOutcome};
use liteworp::config::Config;
use liteworp::keys::KeyStore;
use liteworp::malc::MalcTable;
use liteworp::neighbor::NeighborTable;
use liteworp::types::{Micros, NodeId, PacketKind, PacketSig};
use liteworp::watch::WatchBuffer;
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..32).prop_map(NodeId)
}

fn arb_sig() -> impl Strategy<Value = PacketSig> {
    (
        prop_oneof![Just(PacketKind::RouteRequest), Just(PacketKind::RouteReply)],
        0u32..32,
        0u32..32,
        0u64..1000,
    )
        .prop_map(|(kind, o, t, seq)| PacketSig {
            kind,
            origin: NodeId(o),
            target: NodeId(t),
            seq,
        })
}

proptest! {
    // ------------------------------------------------------------------
    // Keys: tags verify iff key, peer and message all match.
    // ------------------------------------------------------------------
    #[test]
    fn mac_round_trip(seed in any::<u64>(), a in arb_node(), b in arb_node(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        let ka = KeyStore::new(seed, a);
        let kb = KeyStore::new(seed, b);
        let tag = ka.tag(b, &msg);
        prop_assert!(kb.verify(a, &msg, tag));
    }

    #[test]
    fn mac_rejects_tampering(seed in any::<u64>(), a in arb_node(), b in arb_node(), msg in proptest::collection::vec(any::<u8>(), 1..64), flip in 0usize..64) {
        prop_assume!(a != b);
        let ka = KeyStore::new(seed, a);
        let kb = KeyStore::new(seed, b);
        let tag = ka.tag(b, &msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!kb.verify(a, &tampered, tag));
    }

    #[test]
    fn mac_is_peer_bound(seed in any::<u64>(), a in arb_node(), b in arb_node(), c in arb_node(), msg in proptest::collection::vec(any::<u8>(), 0..32)) {
        prop_assume!(a != b && b != c && a != c);
        let ka = KeyStore::new(seed, a);
        let kc = KeyStore::new(seed, c);
        let tag = ka.tag(b, &msg);
        // c cannot verify a tag meant for the (a, b) pair.
        prop_assert!(!kc.verify(a, &msg, tag));
    }

    // ------------------------------------------------------------------
    // Watch buffer: no forwarder that forwarded in time is ever accused,
    // and capacity is never exceeded.
    // ------------------------------------------------------------------
    #[test]
    fn watch_never_accuses_timely_forwarders(
        sigs in proptest::collection::vec(arb_sig(), 1..20),
        prev in arb_node(),
        fwd in arb_node(),
    ) {
        prop_assume!(prev != fwd);
        let mut buf = WatchBuffer::new(64);
        for (i, sig) in sigs.iter().enumerate() {
            buf.note_transmission(prev, *sig, Some(fwd), Micros(1000 + i as u64));
        }
        for sig in &sigs {
            buf.confirm_forward(prev, sig, fwd);
        }
        let accused = buf.expire(Micros(u64::MAX));
        prop_assert!(accused.is_empty(), "accused: {accused:?}");
    }

    #[test]
    fn watch_accuses_exactly_the_unforwarded(
        sigs in proptest::collection::vec((arb_sig(), any::<bool>()), 1..20),
        prev in arb_node(),
        fwd in arb_node(),
    ) {
        prop_assume!(prev != fwd);
        // Deduplicate signatures so expectations are unambiguous.
        let mut seen = std::collections::HashSet::new();
        let sigs: Vec<_> = sigs.into_iter().filter(|(s, _)| seen.insert(*s)).collect();
        let mut buf = WatchBuffer::new(sigs.len().max(1));
        for (sig, _) in &sigs {
            buf.note_transmission(prev, *sig, Some(fwd), Micros(1000));
        }
        for (sig, forwarded) in &sigs {
            if *forwarded {
                buf.confirm_forward(prev, sig, fwd);
            }
        }
        let accused = buf.expire(Micros(2000));
        let expected: usize = sigs.iter().filter(|(_, f)| !f).count();
        prop_assert_eq!(accused.len(), expected);
        prop_assert!(accused.iter().all(|(n, _, _)| *n == fwd));
    }

    #[test]
    fn watch_respects_capacity(
        cap in 1usize..16,
        entries in proptest::collection::vec((arb_node(), arb_sig()), 0..64),
    ) {
        let mut buf = WatchBuffer::new(cap);
        for (i, (prev, sig)) in entries.iter().enumerate() {
            buf.note_transmission(*prev, *sig, None, Micros(i as u64 + 1));
            prop_assert!(buf.len() <= cap);
        }
    }

    // ------------------------------------------------------------------
    // MalC: windowed value never exceeds unbounded value; totals add up.
    // ------------------------------------------------------------------
    #[test]
    fn windowed_malc_is_bounded_by_unbounded(
        events in proptest::collection::vec((0u64..1_000_000, 1u32..5), 1..30),
        window in 1u64..500_000,
    ) {
        let mut unbounded = MalcTable::new(0);
        let mut windowed = MalcTable::new(window);
        let node = NodeId(1);
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.0);
        for (t, w) in &sorted {
            unbounded.record(node, *w, Micros(*t));
            windowed.record(node, *w, Micros(*t));
        }
        let now = Micros(sorted.last().unwrap().0);
        prop_assert!(windowed.value(node, now) <= unbounded.value(node, now));
        let total: u32 = sorted.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(unbounded.value(node, now), total);
    }

    // ------------------------------------------------------------------
    // Alert buffer: isolation happens exactly at γ distinct accusers.
    // ------------------------------------------------------------------
    #[test]
    fn alerts_isolate_exactly_at_gamma(
        gamma in 1usize..6,
        accusers in proptest::collection::vec(arb_node(), 1..20),
    ) {
        let mut buf = AlertBuffer::new(gamma);
        let suspect = NodeId(99);
        let mut distinct = std::collections::BTreeSet::new();
        for g in &accusers {
            let before = distinct.len();
            distinct.insert(*g);
            let outcome = buf.record(suspect, *g);
            match outcome {
                AlertOutcome::Isolate => prop_assert_eq!(distinct.len(), gamma),
                AlertOutcome::Counted { got, needed } => {
                    prop_assert_eq!(needed, gamma);
                    prop_assert_eq!(got, distinct.len());
                    prop_assert!(got < gamma);
                }
                AlertOutcome::Duplicate => prop_assert_eq!(distinct.len(), before),
                AlertOutcome::AlreadyIsolated => prop_assert!(distinct.len() >= gamma),
            }
        }
        prop_assert_eq!(buf.is_isolated(suspect), distinct.len() >= gamma);
    }

    // ------------------------------------------------------------------
    // Neighbor table: revocation is sticky and excludes from all queries.
    // ------------------------------------------------------------------
    #[test]
    fn revocation_is_sticky(
        neighbors in proptest::collection::btree_set(1u32..32, 1..10),
        revoke_idx in any::<prop::sample::Index>(),
    ) {
        let mut t = NeighborTable::new(NodeId(0));
        let ids: Vec<NodeId> = neighbors.iter().map(|&n| NodeId(n)).collect();
        for &n in &ids {
            t.add_neighbor(n);
        }
        let victim = *revoke_idx.get(&ids);
        t.revoke(victim);
        t.add_neighbor(victim); // must not resurrect
        prop_assert!(t.is_revoked(victim));
        prop_assert!(!t.is_active_neighbor(victim));
        prop_assert!(t.active_neighbors().all(|n| n != victim));
        prop_assert!(!t.link_plausible(NodeId(0), victim));
    }

    #[test]
    fn link_plausibility_is_consistent_with_stored_lists(
        list in proptest::collection::btree_set(2u32..32, 0..10),
        probe in 2u32..32,
    ) {
        let mut t = NeighborTable::new(NodeId(0));
        t.add_neighbor(NodeId(1));
        t.set_neighbor_list(NodeId(1), list.iter().map(|&n| NodeId(n)));
        let expected = list.contains(&probe);
        prop_assert_eq!(t.link_plausible(NodeId(probe), NodeId(1)), expected);
    }

    // ------------------------------------------------------------------
    // Config: accusation counts are consistent with the weights.
    // ------------------------------------------------------------------
    #[test]
    fn accusation_counts_cover_threshold(
        vf in 1u32..10, vd in 1u32..10, ct in 1u32..50,
    ) {
        let cfg = Config {
            fabrication_weight: vf,
            drop_weight: vd,
            malc_threshold: ct,
            ..Config::default()
        };
        // k events of weight w must reach the threshold, k-1 must not.
        let k = cfg.fabrications_to_accuse();
        prop_assert!(k * vf >= ct);
        prop_assert!(k == 0 || (k - 1) * vf < ct);
        let kd = cfg.drops_to_accuse();
        prop_assert!(kd * vd >= ct);
        prop_assert!(kd == 0 || (kd - 1) * vd < ct);
    }
}
