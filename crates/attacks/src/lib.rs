//! All five wormhole attack modes of LITEWORP's taxonomy (Section 3,
//! Table 1), implemented as adversarial node logic for the simulator.
//!
//! | Mode | Type | Implementation |
//! |---|---|---|
//! | 1 | packet encapsulation | [`wormhole::WormholeNode`] with nonzero tunnel latency |
//! | 2 | out-of-band channel | [`wormhole::WormholeNode`] with zero tunnel latency |
//! | 3 | high power transmission | [`solo::HighPowerNode`] |
//! | 4 | packet relay | [`solo::RelayNode`] |
//! | 5 | protocol deviation (rushing) | [`solo::RushingNode`] |
//!
//! Every attacker wraps an honest [`liteworp_routing::node::ProtocolNode`]
//! and behaves impeccably until its activation time, matching the paper's
//! threat model (insiders compromised after the secure neighbor-discovery
//! window `T_CT`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mode;
pub mod solo;
pub mod wormhole;

pub use mode::AttackMode;
pub use solo::{HighPowerNode, RelayNode, RushingNode};
pub use wormhole::{ForgeStrategy, WormholeConfig, WormholeNode};
