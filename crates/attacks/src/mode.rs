//! The wormhole attack taxonomy (Section 3, Table 1).

use std::fmt;

/// The five ways of launching a wormhole attack classified by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackMode {
    /// Mode 1: the request is encapsulated and carried between colluders
    /// over a normal multihop path, so the hop count does not grow
    /// (Section 3.1).
    PacketEncapsulation,
    /// Mode 2: colluders share an out-of-band high-bandwidth channel
    /// (wired link or long-range directional radio, Section 3.2).
    OutOfBandChannel,
    /// Mode 3: a single node broadcasts at high power to cross multiple
    /// hops at once (Section 3.3).
    HighPowerTransmission,
    /// Mode 4: a single node relays packets verbatim between two
    /// non-neighbors to convince them they are neighbors (Section 3.4).
    PacketRelay,
    /// Mode 5: a node skips the mandated MAC backoff so its forwards
    /// always win route races — a form of rushing attack (Section 3.5).
    ProtocolDeviation,
}

impl AttackMode {
    /// All modes, in Table 1 order.
    pub const ALL: [AttackMode; 5] = [
        AttackMode::PacketEncapsulation,
        AttackMode::OutOfBandChannel,
        AttackMode::HighPowerTransmission,
        AttackMode::PacketRelay,
        AttackMode::ProtocolDeviation,
    ];

    /// Minimum number of compromised nodes needed (Table 1).
    pub fn min_compromised_nodes(&self) -> usize {
        match self {
            AttackMode::PacketEncapsulation | AttackMode::OutOfBandChannel => 2,
            _ => 1,
        }
    }

    /// Special capability required (Table 1), if any.
    pub fn special_requirement(&self) -> Option<&'static str> {
        match self {
            AttackMode::PacketEncapsulation => None,
            AttackMode::OutOfBandChannel => Some("out-of-band link"),
            AttackMode::HighPowerTransmission => Some("high energy source"),
            AttackMode::PacketRelay => None,
            AttackMode::ProtocolDeviation => None,
        }
    }

    /// Whether LITEWORP handles the mode (Section 4.2.3: all but the
    /// protocol deviation).
    pub fn handled_by_liteworp(&self) -> bool {
        !matches!(self, AttackMode::ProtocolDeviation)
    }
}

impl fmt::Display for AttackMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackMode::PacketEncapsulation => "packet encapsulation",
            AttackMode::OutOfBandChannel => "out-of-band channel",
            AttackMode::HighPowerTransmission => "high power transmission",
            AttackMode::PacketRelay => "packet relay",
            AttackMode::ProtocolDeviation => "protocol deviations",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_minimums() {
        assert_eq!(AttackMode::PacketEncapsulation.min_compromised_nodes(), 2);
        assert_eq!(AttackMode::OutOfBandChannel.min_compromised_nodes(), 2);
        assert_eq!(AttackMode::HighPowerTransmission.min_compromised_nodes(), 1);
        assert_eq!(AttackMode::PacketRelay.min_compromised_nodes(), 1);
        assert_eq!(AttackMode::ProtocolDeviation.min_compromised_nodes(), 1);
    }

    #[test]
    fn table_1_requirements() {
        assert_eq!(AttackMode::PacketEncapsulation.special_requirement(), None);
        assert_eq!(
            AttackMode::OutOfBandChannel.special_requirement(),
            Some("out-of-band link")
        );
        assert_eq!(
            AttackMode::HighPowerTransmission.special_requirement(),
            Some("high energy source")
        );
        assert_eq!(AttackMode::PacketRelay.special_requirement(), None);
        assert_eq!(AttackMode::ProtocolDeviation.special_requirement(), None);
    }

    #[test]
    fn liteworp_handles_all_but_protocol_deviation() {
        let handled: Vec<bool> = AttackMode::ALL
            .iter()
            .map(|m| m.handled_by_liteworp())
            .collect();
        assert_eq!(handled, vec![true, true, true, true, false]);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            AttackMode::OutOfBandChannel.to_string(),
            "out-of-band channel"
        );
    }
}
