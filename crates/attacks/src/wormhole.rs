//! The colluding wormhole node (attack modes 1 and 2).
//!
//! A [`WormholeNode`] behaves exactly like an honest [`ProtocolNode`]
//! until its activation time (the paper starts the attack at t = 50 s),
//! then:
//!
//! * every route request it overhears is tunneled to all colluders —
//!   instantaneously for the out-of-band channel (mode 2), or after a
//!   configurable encapsulation latency (mode 1);
//! * a tunneled request is rebroadcast locally with a **forged previous
//!   hop** so the flood continues as if the request had traveled only one
//!   hop, attracting the route through the colluders;
//! * the route reply coming back for such a rebroadcast is tunneled to the
//!   originating colluder, which injects it toward the source along the
//!   real reverse path, again forging the previous hop;
//! * once a route through the wormhole carries data, every data packet
//!   handed to the node is silently dropped (counted in the
//!   `wormhole_dropped` metric).
//!
//! The forged previous hop is chosen per [`ForgeStrategy`]: naming the
//! colluder is rejected outright by second-hop checks, naming a real
//! neighbor passes admission but is caught by that link's guards — which
//! is precisely the detection path of Section 4.2.3.

use liteworp::types::NodeId;
use liteworp_netsim::prelude::{Context, Dest, Frame, FrameSpec, NodeLogic, SimDuration, SimTime};
use liteworp_netsim::rng::Rng;
use liteworp_routing::node::{core_id, sim_id, ProtocolNode};
use liteworp_routing::packet::Packet;
use liteworp_routing::params::NodeParams;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// How a wormhole endpoint fills the previous-hop field it forges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgeStrategy {
    /// Name the colluding partner — instantly rejected by every receiver's
    /// second-hop check (the paper's "first choice").
    Colluder,
    /// Name one fixed real neighbor — passes admission; the link's guards
    /// detect the fabrication (the paper's "second choice").
    InnocentNeighbor,
    /// Rotate through real neighbors to spread `MalC` across guards — an
    /// adaptive-attacker ablation beyond the paper.
    RotatingNeighbors,
}

/// Configuration of one wormhole endpoint.
#[derive(Debug, Clone)]
pub struct WormholeConfig {
    /// The other endpoints of the wormhole.
    pub colluders: Vec<NodeId>,
    /// When the node turns malicious.
    pub active_from: SimTime,
    /// Tunnel latency: zero models the out-of-band channel (mode 2),
    /// larger values model packet encapsulation over a multihop path
    /// (mode 1).
    pub tunnel_latency: SimDuration,
    /// Previous-hop forging strategy.
    pub forge: ForgeStrategy,
    /// When `true`, the endpoint *also* forwards tunneled replies along
    /// the legitimate slow path, dodging drop detection (the paper's
    /// "smarter M2").
    pub smart_reply: bool,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            colluders: Vec::new(),
            active_from: SimTime::from_secs_f64(50.0),
            tunnel_latency: SimDuration::ZERO,
            forge: ForgeStrategy::InnocentNeighbor,
            smart_reply: false,
        }
    }
}

/// A wormhole endpoint: honest node plus colluding tunnel behavior.
pub struct WormholeNode {
    inner: ProtocolNode,
    attack: WormholeConfig,
    /// Requests already tunneled, by (source, seq).
    tunneled: BTreeSet<(NodeId, u64)>,
    /// Our forged rebroadcasts awaiting a reply: (source, seq) → colluder
    /// that tunneled us the request.
    forged_rebroadcasts: BTreeMap<(NodeId, u64), NodeId>,
    /// Replies already tunneled back, by (source, seq).
    replied: BTreeSet<(NodeId, u64)>,
    /// Announced senders heard directly over the radio — the attacker's
    /// passive neighbor knowledge, used for forging when the honest core
    /// runs without LITEWORP (baseline runs have no neighbor table).
    observed_neighbors: std::collections::BTreeSet<NodeId>,
    forge_rotation: usize,
}

impl WormholeNode {
    /// Wraps an honest node with wormhole behavior. The inner node's
    /// guard role is switched off — a compromised node does not run the
    /// defense.
    pub fn new(mut inner: ProtocolNode, attack: WormholeConfig) -> Self {
        inner.set_monitoring(false);
        WormholeNode {
            inner,
            attack,
            tunneled: BTreeSet::new(),
            forged_rebroadcasts: BTreeMap::new(),
            replied: BTreeSet::new(),
            observed_neighbors: std::collections::BTreeSet::new(),
            forge_rotation: 0,
        }
    }

    /// The wrapped honest node (for bootstrap and inspection).
    pub fn inner(&self) -> &ProtocolNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (oracle bootstrap).
    pub fn inner_mut(&mut self) -> &mut ProtocolNode {
        &mut self.inner
    }

    /// The attack configuration.
    pub fn attack(&self) -> &WormholeConfig {
        &self.attack
    }

    fn active(&self, now: SimTime) -> bool {
        now >= self.attack.active_from
    }

    /// Chooses the previous hop to forge for an injected packet.
    fn forged_prev(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        via_colluder: NodeId,
    ) -> Option<NodeId> {
        match self.attack.forge {
            ForgeStrategy::Colluder => Some(via_colluder),
            ForgeStrategy::InnocentNeighbor | ForgeStrategy::RotatingNeighbors => {
                let neighbors: Vec<NodeId> = match self.inner.liteworp() {
                    Some(lw) => lw.table().active_neighbors().collect(),
                    None => self.observed_neighbors.iter().copied().collect(),
                };
                if neighbors.is_empty() {
                    return None;
                }
                let idx = match self.attack.forge {
                    ForgeStrategy::InnocentNeighbor => 0,
                    _ => {
                        self.forge_rotation += 1;
                        (self.forge_rotation + ctx.rng().gen_range(0..neighbors.len()))
                            % neighbors.len()
                    }
                };
                Some(neighbors[idx % neighbors.len()])
            }
        }
    }

    fn tunnel_request(&mut self, ctx: &mut Context<'_, Packet>, pkt: &Packet) {
        let Packet::RouteRequest { sig, .. } = pkt else {
            return;
        };
        let key = (sig.origin, sig.seq);
        if self.tunneled.contains(&key) {
            return;
        }
        // Do not tunnel floods originated by a colluder (pointless).
        if self.attack.colluders.contains(&sig.origin) {
            return;
        }
        self.tunneled.insert(key);
        for &colluder in &self.attack.colluders.clone() {
            ctx.metrics().incr("wormhole_tunneled_requests");
            ctx.tunnel(sim_id(colluder), pkt.clone(), self.attack.tunnel_latency);
        }
    }

    fn handle_tunneled(&mut self, ctx: &mut Context<'_, Packet>, from: NodeId, pkt: &Packet) {
        match pkt {
            Packet::RouteRequest { sig, hops, .. } => {
                let key = (sig.origin, sig.seq);
                if self.forged_rebroadcasts.contains_key(&key) {
                    return;
                }
                let Some(prev) = self.forged_prev(ctx, from) else {
                    return;
                };
                self.forged_rebroadcasts.insert(key, from);
                let me = self.inner.id();
                let out = Packet::RouteRequest {
                    sig: *sig,
                    sender: me,
                    prev: Some(prev),
                    hops: hops.saturating_add(1),
                };
                let bytes = out.wire_bytes();
                ctx.metrics().incr("wormhole_forged_requests");
                ctx.send(FrameSpec::new(Dest::Broadcast, out, bytes));
            }
            Packet::RouteReply {
                sig, hops, relays, ..
            } => {
                // We are the colluder nearest the source: inject the reply
                // toward S along the real reverse path.
                let key = (sig.target, sig.seq);
                let Some(next) = self.inner.reverse_hop(sig.target, sig.seq) else {
                    return;
                };
                if self.replied.contains(&key) {
                    return;
                }
                self.replied.insert(key);
                let Some(prev) = self.forged_prev(ctx, from) else {
                    return;
                };
                let me = self.inner.id();
                let mut relays = relays.clone();
                relays.push(me);
                let out = Packet::RouteReply {
                    sig: *sig,
                    sender: me,
                    prev: Some(prev),
                    next,
                    hops: *hops,
                    relays,
                };
                let bytes = out.wire_bytes();
                ctx.metrics().incr("wormhole_forged_replies");
                ctx.send(FrameSpec::new(Dest::Unicast(sim_id(next)), out, bytes));
            }
            _ => {}
        }
    }
}

impl NodeLogic<Packet> for WormholeNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        if let Some(sender) = frame.payload.announced_sender() {
            if sender != self.inner.id() {
                self.observed_neighbors.insert(sender);
            }
        }
        if !self.active(ctx.now()) {
            self.inner.handle_frame(ctx, frame);
            return;
        }
        match &frame.payload {
            Packet::RouteRequest { .. } => {
                // Tunnel every request we hear, then keep our cover by
                // also processing it honestly (normal rebroadcast keeps
                // our reverse pointers fresh for reply injection).
                self.tunnel_request(ctx, &frame.payload);
                self.inner.handle_frame(ctx, frame);
            }
            Packet::RouteReply { sig, next, .. } => {
                let key = (sig.target, sig.seq);
                if *next == self.inner.id() && self.forged_rebroadcasts.contains_key(&key) {
                    // Reply to one of our forged rebroadcasts: send it
                    // through the tunnel back to the colluder near S.
                    let colluder = self.forged_rebroadcasts[&key];
                    ctx.metrics().incr("wormhole_tunneled_replies");
                    ctx.tunnel(
                        sim_id(colluder),
                        frame.payload.clone(),
                        self.attack.tunnel_latency,
                    );
                    if self.attack.smart_reply {
                        // Dodge drop detection: also forward legitimately.
                        self.inner.handle_frame(ctx, frame);
                    }
                } else {
                    self.inner.handle_frame(ctx, frame);
                }
            }
            Packet::Data { target, next, .. } => {
                // Dropping is the *wormhole's* payoff: a lone compromised
                // node (no colluders) cannot form a wormhole and stays in
                // normal relay behavior (the paper's Figure 9 shows no
                // adverse effect for M <= 1).
                if *next == self.inner.id()
                    && *target != self.inner.id()
                    && !self.attack.colluders.is_empty()
                {
                    ctx.metrics().incr("wormhole_dropped");
                } else {
                    self.inner.handle_frame(ctx, frame);
                }
            }
            _ => self.inner.handle_frame(ctx, frame),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        self.inner.handle_timer(ctx, token);
    }

    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_collision(ctx);
    }

    fn on_tunnel(
        &mut self,
        ctx: &mut Context<'_, Packet>,
        from: liteworp_netsim::field::NodeId,
        payload: &Packet,
    ) {
        if !self.active(ctx.now()) {
            return;
        }
        self.handle_tunneled(ctx, core_id(from), payload);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds a wormhole endpoint from scratch (honest core + attack config).
pub fn wormhole_node(me: NodeId, params: NodeParams, attack: WormholeConfig) -> WormholeNode {
    WormholeNode::new(ProtocolNode::new(me, params), attack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_match_paper() {
        let cfg = WormholeConfig::default();
        assert_eq!(cfg.active_from, SimTime::from_secs_f64(50.0));
        assert_eq!(cfg.tunnel_latency, SimDuration::ZERO);
        assert_eq!(cfg.forge, ForgeStrategy::InnocentNeighbor);
        assert!(!cfg.smart_reply);
    }

    #[test]
    fn node_is_dormant_before_activation() {
        let node = wormhole_node(NodeId(0), NodeParams::default(), WormholeConfig::default());
        assert!(!node.active(SimTime::from_secs_f64(10.0)));
        assert!(node.active(SimTime::from_secs_f64(50.0)));
    }

    #[test]
    fn inner_is_reachable_for_bootstrap() {
        let mut node = wormhole_node(NodeId(3), NodeParams::default(), WormholeConfig::default());
        assert_eq!(node.inner().id(), NodeId(3));
        node.inner_mut()
            .liteworp_mut()
            .unwrap()
            .table_mut()
            .add_neighbor(NodeId(1));
        assert!(node
            .inner()
            .liteworp()
            .unwrap()
            .table()
            .is_neighbor(NodeId(1)));
    }
}
