//! Single-node wormhole modes: high-power transmission (mode 3), packet
//! relay (mode 4), and protocol deviation / rushing (mode 5).

use liteworp::types::NodeId;
use liteworp_netsim::prelude::{Context, Dest, Frame, FrameSpec, NodeLogic, SimTime};
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::packet::Packet;
use std::any::Any;
use std::collections::BTreeSet;

/// Mode 3: rebroadcasts route requests at boosted power so distant nodes
/// hear it directly and (if unprotected) route through it.
///
/// LITEWORP's defense is the bidirectional-link assumption: a receiver
/// that does not have the transmitter in its neighbor list rejects the
/// packet outright.
pub struct HighPowerNode {
    inner: ProtocolNode,
    active_from: SimTime,
    power_mult: f64,
    seen: BTreeSet<(NodeId, u64)>,
}

impl HighPowerNode {
    /// Wraps an honest node; from `active_from` onwards route requests are
    /// rebroadcast at `power_mult` times the nominal range.
    ///
    /// # Panics
    ///
    /// Panics if `power_mult <= 1`.
    pub fn new(mut inner: ProtocolNode, active_from: SimTime, power_mult: f64) -> Self {
        assert!(power_mult > 1.0, "a high-power attacker needs power > 1");
        inner.set_monitoring(false);
        HighPowerNode {
            inner,
            active_from,
            power_mult,
            seen: BTreeSet::new(),
        }
    }

    /// The wrapped honest node.
    pub fn inner(&self) -> &ProtocolNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (bootstrap).
    pub fn inner_mut(&mut self) -> &mut ProtocolNode {
        &mut self.inner
    }
}

impl NodeLogic<Packet> for HighPowerNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        if ctx.now() < self.active_from {
            self.inner.handle_frame(ctx, frame);
            return;
        }
        if let Packet::RouteRequest {
            sig, sender, hops, ..
        } = &frame.payload
        {
            let key = (sig.origin, sig.seq);
            if sig.target != self.inner.id() && self.seen.insert(key) {
                // Cross several hops in one boosted rebroadcast; announce
                // the true previous hop (the deception is the range, not
                // the header).
                let me = self.inner.id();
                let out = Packet::RouteRequest {
                    sig: *sig,
                    sender: me,
                    prev: Some(*sender),
                    hops: hops.saturating_add(1),
                };
                let bytes = out.wire_bytes();
                ctx.metrics().incr("highpower_requests");
                ctx.send(
                    FrameSpec::new(Dest::Broadcast, out, bytes).with_high_power(self.power_mult),
                );
                return;
            }
        }
        self.inner.handle_frame(ctx, frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        self.inner.handle_timer(ctx, token);
    }

    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_collision(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Mode 4: retransmits overheard frames verbatim, so two distant nodes
/// hear each other's packets and believe they are neighbors.
///
/// LITEWORP's defense: both victims know from their neighbor lists that
/// they are *not* neighbors and reject the relayed packets.
pub struct RelayNode {
    inner: ProtocolNode,
    active_from: SimTime,
    relayed: u64,
}

impl RelayNode {
    /// Wraps an honest node; from `active_from` onwards every overheard
    /// routing frame is retransmitted verbatim.
    pub fn new(mut inner: ProtocolNode, active_from: SimTime) -> Self {
        inner.set_monitoring(false);
        RelayNode {
            inner,
            active_from,
            relayed: 0,
        }
    }

    /// The wrapped honest node.
    pub fn inner(&self) -> &ProtocolNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (bootstrap).
    pub fn inner_mut(&mut self) -> &mut ProtocolNode {
        &mut self.inner
    }

    /// Frames relayed so far.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }
}

impl NodeLogic<Packet> for RelayNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        if ctx.now() < self.active_from {
            self.inner.handle_frame(ctx, frame);
            return;
        }
        // Verbatim relay: the payload still names the original announced
        // sender — to a distant receiver it looks like a one-hop packet
        // from that sender.
        match &frame.payload {
            Packet::RouteRequest { .. } | Packet::RouteReply { .. } | Packet::Data { .. } => {
                self.relayed += 1;
                ctx.metrics().incr("relay_retransmissions");
                let pkt = frame.payload.clone();
                let bytes = pkt.wire_bytes();
                ctx.send(FrameSpec::new(frame.dest, pkt, bytes));
            }
            _ => {}
        }
        // Keep cover: honest processing continues.
        self.inner.handle_frame(ctx, frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        self.inner.handle_timer(ctx, token);
    }

    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_collision(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Mode 5: forwards route requests without the mandated random backoff
/// (rushing), so its copies win the flood race and routes concentrate
/// through it; it then drops the attracted data.
///
/// LITEWORP cannot detect this mode — the forwards are genuine. The
/// rushing defenses of Hu et al. are out of scope (Section 4.2.3).
pub struct RushingNode {
    inner: ProtocolNode,
    active_from: SimTime,
    drop_data: bool,
    seen: BTreeSet<(NodeId, u64)>,
}

impl RushingNode {
    /// Wraps an honest node; from `active_from` onwards route requests are
    /// forwarded with zero backoff. When `drop_data` is set, attracted
    /// data packets are swallowed (counted as `rushing_dropped`).
    pub fn new(mut inner: ProtocolNode, active_from: SimTime, drop_data: bool) -> Self {
        inner.set_monitoring(false);
        RushingNode {
            inner,
            active_from,
            drop_data,
            seen: BTreeSet::new(),
        }
    }

    /// The wrapped honest node.
    pub fn inner(&self) -> &ProtocolNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (bootstrap).
    pub fn inner_mut(&mut self) -> &mut ProtocolNode {
        &mut self.inner
    }
}

impl NodeLogic<Packet> for RushingNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_start(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Context<'_, Packet>, frame: &Frame<Packet>) {
        if ctx.now() < self.active_from {
            self.inner.handle_frame(ctx, frame);
            return;
        }
        match &frame.payload {
            Packet::RouteRequest {
                sig, sender, hops, ..
            } => {
                let key = (sig.origin, sig.seq);
                if sig.target != self.inner.id() && self.seen.insert(key) {
                    let me = self.inner.id();
                    let out = Packet::RouteRequest {
                        sig: *sig,
                        sender: me,
                        prev: Some(*sender), // a *genuine* forward
                        hops: hops.saturating_add(1),
                    };
                    let bytes = out.wire_bytes();
                    ctx.metrics().incr("rushed_requests");
                    ctx.send(FrameSpec::new(Dest::Broadcast, out, bytes).rushed());
                }
                // Stay protocol-consistent: the honest core still records
                // the reverse pointer so replies routed through us are
                // forwarded (a rusher that drops replies would be caught
                // by drop detection).
                self.inner.handle_frame(ctx, frame);
            }
            Packet::Data { target, next, .. }
                if self.drop_data && *next == self.inner.id() && *target != self.inner.id() =>
            {
                ctx.metrics().incr("rushing_dropped");
            }
            _ => self.inner.handle_frame(ctx, frame),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Packet>, token: u64) {
        self.inner.handle_timer(ctx, token);
    }

    fn on_collision(&mut self, ctx: &mut Context<'_, Packet>) {
        self.inner.handle_collision(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liteworp_routing::params::NodeParams;

    fn honest(i: u32) -> ProtocolNode {
        ProtocolNode::new(NodeId(i), NodeParams::default())
    }

    #[test]
    fn high_power_requires_boost() {
        let n = HighPowerNode::new(honest(0), SimTime::ZERO, 3.0);
        assert_eq!(n.inner().id(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "power > 1")]
    fn high_power_rejects_unity() {
        HighPowerNode::new(honest(0), SimTime::ZERO, 1.0);
    }

    #[test]
    fn relay_starts_idle() {
        let n = RelayNode::new(honest(1), SimTime::from_secs_f64(50.0));
        assert_eq!(n.relayed(), 0);
    }

    #[test]
    fn rushing_node_wraps_inner() {
        let mut n = RushingNode::new(honest(2), SimTime::ZERO, true);
        assert_eq!(n.inner().id(), NodeId(2));
        n.inner_mut(); // compiles: bootstrap path available
    }
}
