//! Bounded ring-buffer event sink with exact per-kind counters.

use crate::event::{Event, EventKind, KIND_COUNT, KIND_NAMES};
use liteworp_runner::json::Json;
use std::collections::VecDeque;

/// Default ring capacity: enough for every event of a paper-scale run,
/// small enough that a runaway emitter cannot exhaust memory.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// An append-mostly event sink.
///
/// Events are kept in a bounded ring: when full, the oldest event is
/// dropped and counted in [`EventLog::dropped`]. Per-kind counters are
/// incremented on *record*, so [`EventLog::count`] stays exact even after
/// the ring has wrapped — aggregates never silently undercount.
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: VecDeque<Event>,
    capacity: usize,
    counts: [u64; KIND_COUNT],
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_CAPACITY)
    }
}

impl EventLog {
    /// A log holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            counts: [0; KIND_COUNT],
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: Event) {
        self.counts[event.kind.index()] += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted from the ring (recorded minus retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact number of events of this kind ever recorded, including any
    /// the ring has since evicted. Matches on the variant only.
    pub fn count(&self, kind: &EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Exact per-kind totals as `(name, count)`, in kind-index order.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        KIND_NAMES.iter().zip(self.counts).map(|(&n, c)| (n, c))
    }

    /// Per-kind totals as a JSON object (all kinds, zero or not, so two
    /// runs' counter objects always diff field-by-field).
    pub fn counts_json(&self) -> Json {
        Json::object(self.counts().map(|(name, count)| (name, Json::from(count))))
    }

    /// Serializes retained events as JSONL, one event per line, oldest
    /// first, with a trailing newline when non-empty.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event.to_json().dump());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(t: u64, node: u32) -> Event {
        Event {
            time_us: t,
            node,
            kind: EventKind::HelloSent,
        }
    }

    #[test]
    fn counts_survive_ring_eviction() {
        let mut log = EventLog::with_capacity(2);
        for t in 0..5 {
            log.record(hello(t, 0));
        }
        log.record(Event {
            time_us: 5,
            node: 1,
            kind: EventKind::Suspected { suspect: 3 },
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 4);
        assert_eq!(log.count(&EventKind::HelloSent), 5);
        assert_eq!(log.count(&EventKind::Suspected { suspect: 999 }), 1);
        let retained: Vec<u64> = log.events().map(|e| e.time_us).collect();
        assert_eq!(retained, vec![4, 5], "oldest evicted first");
    }

    #[test]
    fn jsonl_has_one_parseable_line_per_event() {
        let mut log = EventLog::default();
        log.record(hello(1, 0));
        log.record(hello(2, 1));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let parsed = Json::parse(line).unwrap();
            assert!(Event::from_json(&parsed).is_some());
        }
    }

    #[test]
    fn counts_json_lists_every_kind() {
        let log = EventLog::default();
        let json = log.counts_json();
        for name in KIND_NAMES {
            assert_eq!(json.get(name).and_then(Json::as_u64), Some(0), "{name}");
        }
    }
}
