//! Typed protocol telemetry for the LITEWORP reproduction.
//!
//! Three pieces, all std-only:
//!
//! - [`Event`] / [`EventKind`]: a sim-time-stamped, typed record of every
//!   analysis-relevant protocol occurrence (hello broadcasts, neighbor
//!   additions, watch-buffer expiries, `MalC` increments, alerts,
//!   suspicions, isolations, tunnel relays, route establishment). This is
//!   the single source of truth the experiments read — no parallel
//!   string-tagged bookkeeping.
//! - [`EventLog`]: a bounded ring-buffer sink with per-kind counters that
//!   stay exact even after the ring starts dropping old events.
//! - [`Histogram`]: log2-bucket histograms with `p50`/`p95`/`max`,
//!   mergeable across seeds and serializable through the runner's JSON
//!   writer.
//!
//! Events serialize to one JSON object per line (JSONL) so traces stream
//! to disk and diff cleanly between runs.

#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod log;

pub use event::{Event, EventKind, MalcReason};
pub use hist::Histogram;
pub use log::EventLog;

pub use liteworp_runner::json::Json;
