//! The typed protocol event vocabulary.
//!
//! One [`Event`] is recorded per analysis-relevant protocol occurrence.
//! Node identifiers are raw `u32` indices so the crate stays independent
//! of any particular simulator's id newtype; hosts convert at the edge.

use liteworp_runner::json::Json;

/// Why a guard incremented a suspect's `MalC` counter (paper §5.3:
/// fabrication carries weight `V_f`, dropping weight `V_d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalcReason {
    /// The suspect forwarded a packet it was never sent (fabrication or
    /// modification detected against the watch buffer).
    Fabrication,
    /// A watched packet expired unforwarded (malicious drop).
    Drop,
}

impl MalcReason {
    /// Stable lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            MalcReason::Fabrication => "fabrication",
            MalcReason::Drop => "drop",
        }
    }

    /// Parses the JSON name back.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fabrication" => Some(MalcReason::Fabrication),
            "drop" => Some(MalcReason::Drop),
            _ => None,
        }
    }
}

/// What happened. Field conventions: `suspect`/`peer`/`dest` are node
/// indices; counters are cumulative values *after* the event applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A HELLO discovery broadcast left this node.
    HelloSent,
    /// Neighbor discovery added `peer` to this node's neighbor table.
    NeighborAdded {
        /// The newly added first-hop neighbor.
        peer: u32,
    },
    /// `expired` watch-buffer entries timed out unforwarded at a guard
    /// during one expiry sweep (paper §5.3: each is a detected drop).
    WatchBufferExpired {
        /// Entries that expired in this sweep (≥ 1).
        expired: u32,
    },
    /// A guard raised a suspect's malicious-behavior counter.
    MalcIncrement {
        /// Whose counter rose.
        suspect: u32,
        /// Weight added (`V_f` or `V_d`).
        delta: u32,
        /// Counter value after the increment.
        malc: u32,
        /// Which misbehavior was observed.
        reason: MalcReason,
    },
    /// This node sent an authenticated alert accusing `suspect`.
    AlertSent {
        /// The accused node.
        suspect: u32,
        /// Neighbor the alert was addressed to.
        recipient: u32,
    },
    /// This node received an alert from `guard` accusing `suspect`.
    AlertReceived {
        /// The accusing guard.
        guard: u32,
        /// The accused node.
        suspect: u32,
        /// Whether the alert counted toward the γ quorum (false for
        /// duplicates, unknown guards, or already-isolated suspects).
        accepted: bool,
    },
    /// This node locally crossed the `C_t` threshold for `suspect`.
    Suspected {
        /// The locally suspected node.
        suspect: u32,
    },
    /// This node removed `suspect` from its neighbor view for good.
    Isolated {
        /// The isolated node.
        suspect: u32,
        /// `true` when γ distinct guard alerts confirmed the isolation;
        /// `false` when the node's own `MalC` threshold triggered it.
        by_alerts: bool,
    },
    /// The out-of-band wormhole tunnel relayed a frame.
    TunnelRelay {
        /// Tunnel endpoint that captured the frame.
        from: u32,
        /// Tunnel endpoint that replayed it.
        to: u32,
    },
    /// A route to `dest` was installed at this node.
    RouteEstablished {
        /// Route destination.
        dest: u32,
        /// Hop count of the installed route.
        hops: u32,
    },
}

/// Number of distinct [`EventKind`] variants (size of the counter array).
pub const KIND_COUNT: usize = 10;

/// Stable names for each kind, indexed by [`EventKind::index`].
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "hello_sent",
    "neighbor_added",
    "watch_buffer_expired",
    "malc_increment",
    "alert_sent",
    "alert_received",
    "suspected",
    "isolated",
    "tunnel_relay",
    "route_established",
];

impl EventKind {
    /// Dense index of this variant into [`KIND_NAMES`] / counter arrays.
    pub fn index(&self) -> usize {
        match self {
            EventKind::HelloSent => 0,
            EventKind::NeighborAdded { .. } => 1,
            EventKind::WatchBufferExpired { .. } => 2,
            EventKind::MalcIncrement { .. } => 3,
            EventKind::AlertSent { .. } => 4,
            EventKind::AlertReceived { .. } => 5,
            EventKind::Suspected { .. } => 6,
            EventKind::Isolated { .. } => 7,
            EventKind::TunnelRelay { .. } => 8,
            EventKind::RouteEstablished { .. } => 9,
        }
    }

    /// The stable JSON name of this variant.
    pub fn name(&self) -> &'static str {
        KIND_NAMES[self.index()]
    }
}

/// One recorded protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Simulation time in microseconds.
    pub time_us: u64,
    /// Node that reported the event.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes to one flat JSON object (the JSONL trace record shape):
    /// always `t_us`, `node`, `event`, plus the kind's own fields.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("t_us".into(), Json::from(self.time_us)),
            ("node".into(), Json::from(self.node as u64)),
            ("event".into(), Json::from(self.kind.name())),
        ];
        let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match self.kind {
            EventKind::HelloSent => {}
            EventKind::NeighborAdded { peer } => push("peer", Json::from(peer as u64)),
            EventKind::WatchBufferExpired { expired } => {
                push("expired", Json::from(expired as u64))
            }
            EventKind::MalcIncrement {
                suspect,
                delta,
                malc,
                reason,
            } => {
                push("suspect", Json::from(suspect as u64));
                push("delta", Json::from(delta as u64));
                push("malc", Json::from(malc as u64));
                push("reason", Json::from(reason.name()));
            }
            EventKind::AlertSent { suspect, recipient } => {
                push("suspect", Json::from(suspect as u64));
                push("recipient", Json::from(recipient as u64));
            }
            EventKind::AlertReceived {
                guard,
                suspect,
                accepted,
            } => {
                push("guard", Json::from(guard as u64));
                push("suspect", Json::from(suspect as u64));
                push("accepted", Json::from(accepted));
            }
            EventKind::Suspected { suspect } => push("suspect", Json::from(suspect as u64)),
            EventKind::Isolated { suspect, by_alerts } => {
                push("suspect", Json::from(suspect as u64));
                push("by_alerts", Json::from(by_alerts));
            }
            EventKind::TunnelRelay { from, to } => {
                push("from", Json::from(from as u64));
                push("to", Json::from(to as u64));
            }
            EventKind::RouteEstablished { dest, hops } => {
                push("dest", Json::from(dest as u64));
                push("hops", Json::from(hops as u64));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses an event back from its [`Event::to_json`] shape.
    pub fn from_json(json: &Json) -> Option<Self> {
        let u32_of = |k: &str| json.get(k)?.as_u64().map(|v| v as u32);
        let kind = match json.get("event")?.as_str()? {
            "hello_sent" => EventKind::HelloSent,
            "neighbor_added" => EventKind::NeighborAdded {
                peer: u32_of("peer")?,
            },
            "watch_buffer_expired" => EventKind::WatchBufferExpired {
                expired: u32_of("expired")?,
            },
            "malc_increment" => EventKind::MalcIncrement {
                suspect: u32_of("suspect")?,
                delta: u32_of("delta")?,
                malc: u32_of("malc")?,
                reason: MalcReason::from_name(json.get("reason")?.as_str()?)?,
            },
            "alert_sent" => EventKind::AlertSent {
                suspect: u32_of("suspect")?,
                recipient: u32_of("recipient")?,
            },
            "alert_received" => EventKind::AlertReceived {
                guard: u32_of("guard")?,
                suspect: u32_of("suspect")?,
                accepted: json.get("accepted")?.as_bool()?,
            },
            "suspected" => EventKind::Suspected {
                suspect: u32_of("suspect")?,
            },
            "isolated" => EventKind::Isolated {
                suspect: u32_of("suspect")?,
                by_alerts: json.get("by_alerts")?.as_bool()?,
            },
            "tunnel_relay" => EventKind::TunnelRelay {
                from: u32_of("from")?,
                to: u32_of("to")?,
            },
            "route_established" => EventKind::RouteEstablished {
                dest: u32_of("dest")?,
                hops: u32_of("hops")?,
            },
            _ => return None,
        };
        Some(Event {
            time_us: json.get("t_us")?.as_u64()?,
            node: json.get("node")?.as_u64()? as u32,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        let kinds = vec![
            EventKind::HelloSent,
            EventKind::NeighborAdded { peer: 7 },
            EventKind::WatchBufferExpired { expired: 3 },
            EventKind::MalcIncrement {
                suspect: 9,
                delta: 2,
                malc: 14,
                reason: MalcReason::Drop,
            },
            EventKind::AlertSent {
                suspect: 9,
                recipient: 4,
            },
            EventKind::AlertReceived {
                guard: 2,
                suspect: 9,
                accepted: true,
            },
            EventKind::Suspected { suspect: 9 },
            EventKind::Isolated {
                suspect: 9,
                by_alerts: true,
            },
            EventKind::TunnelRelay { from: 30, to: 31 },
            EventKind::RouteEstablished { dest: 5, hops: 4 },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                time_us: 1000 * i as u64,
                node: i as u32,
                kind,
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        for event in samples() {
            let json = event.to_json();
            let parsed = Json::parse(&json.dump()).unwrap();
            assert_eq!(Event::from_json(&parsed), Some(event), "{}", json.dump());
        }
    }

    #[test]
    fn indices_are_dense_and_names_match() {
        let mut seen = [false; KIND_COUNT];
        for event in samples() {
            let idx = event.kind.index();
            assert!(!seen[idx], "duplicate index {idx}");
            seen[idx] = true;
            assert_eq!(event.kind.name(), KIND_NAMES[idx]);
        }
        assert!(seen.iter().all(|&s| s), "all indices covered");
    }

    #[test]
    fn unknown_event_name_is_rejected() {
        let json = Json::parse(r#"{"t_us":1,"node":0,"event":"nope"}"#).unwrap();
        assert_eq!(Event::from_json(&json), None);
    }
}
