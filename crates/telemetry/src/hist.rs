//! Log2-bucket histograms: fixed memory, mergeable, JSON-serializable.

use liteworp_runner::json::Json;

/// Buckets: index 0 holds exactly the value 0; index `b ≥ 1` holds values
/// in `[2^(b-1), 2^b - 1]`, i.e. upper bound `2^b - 1`.
const BUCKETS: usize = 65;

/// A histogram of `u64` samples in logarithmic buckets.
///
/// Quantiles are bucket-resolved (reported as the containing bucket's
/// upper bound, clamped to the observed maximum), which is exact enough
/// for latency distributions spanning orders of magnitude while keeping
/// the type `Copy`-free, fixed-size, and trivially mergeable across
/// per-seed runs.
///
/// # Example
///
/// ```
/// use liteworp_telemetry::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(100));
/// assert!(h.p50().unwrap() <= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket-resolved quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest sample, clamped
    /// to the exactly tracked `[min, max]`. The extreme ranks are exact:
    /// rank 1 is the observed minimum and rank `count` the observed
    /// maximum, so `quantile(0.0)` / `quantile(1.0)` never report a
    /// bucket bound no sample actually hit.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (bucket-resolved).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket-resolved).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes to a JSON object with summary fields and the non-empty
    /// buckets as `{"le": upper_bound, "count": n}` entries.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::object([
                    ("le", Json::from(bucket_upper(i))),
                    ("count", Json::from(c)),
                ])
            })
            .collect();
        Json::object([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max())),
            ("p50", Json::from(self.p50())),
            ("p95", Json::from(self.p95())),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parses a histogram back from its [`Histogram::to_json`] shape.
    pub fn from_json(json: &Json) -> Option<Self> {
        let mut h = Histogram {
            count: json.get("count")?.as_u64()?,
            sum: json.get("sum")?.as_u64()?,
            ..Histogram::default()
        };
        if h.count > 0 {
            h.min = json.get("min")?.as_u64()?;
            h.max = json.get("max")?.as_u64()?;
        }
        for bucket in json.get("buckets")?.as_arr()? {
            let le = bucket.get("le")?.as_u64()?;
            let count = bucket.get("count")?.as_u64()?;
            h.buckets[bucket_index(le)] += count;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64 {
            assert_eq!(bucket_index(bucket_upper(b)), b, "upper bound stays put");
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn quantiles_are_bucket_resolved_and_clamped() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        // The median of 1..=100 is in bucket [32, 63]; p95 in [64, 127]
        // clamps to the observed max of 100.
        assert_eq!(h.p50(), Some(63));
        assert_eq!(h.p95(), Some(100));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn extreme_quantiles_are_exact_not_bucket_bounds() {
        // One sample: every quantile is that sample, not its bucket's
        // upper bound (5 sits in bucket [4, 7]).
        let mut h = Histogram::default();
        h.record(5);
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.quantile(0.0), Some(5));
        assert_eq!(h.quantile(1.0), Some(5));

        // Two samples: rank 1 is the exact min, rank 2 the exact max.
        h.record(1000);
        assert_eq!(h.quantile(0.0), Some(5), "exact min, not bucket bound 7");
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.quantile(1.0), Some(1000), "exact max, not bound 1023");

        // Mid-ranks stay bucket-resolved but clamp into [min, max]: with
        // samples {900, 1000} the rank-1 answer is the exact min 900, and
        // no answer can dip below it even though the bucket starts at 512.
        let mut g = Histogram::default();
        g.record(900);
        g.record(1000);
        assert_eq!(g.quantile(0.0), Some(900));
        assert_eq!(g.p95(), Some(1000));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [0u64, 1, 5, 9, 1000] {
            a.record(v);
            whole.record(v);
        }
        for v in [3u64, 70_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p95(), whole.p95());
    }

    #[test]
    fn json_round_trip_preserves_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 2, 2, 40, 1_000_000] {
            h.record(v);
        }
        let text = h.to_json().dump();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.p50(), h.p50());
        assert_eq!(back.p95(), h.p95());
    }
}
