//! Demonstrates all five wormhole attack modes of the paper's taxonomy
//! (Table 1) against a protected network, and shows which ones LITEWORP
//! neutralizes — everything except the protocol-deviation (rushing) mode.
//!
//! Run with:
//! ```text
//! cargo run --release --example attack_taxonomy
//! ```

use liteworp_attacks::mode::AttackMode;
use liteworp_bench::{Scenario, ScenarioAttack};

fn main() {
    println!("LITEWORP vs. the five wormhole modes (Section 3 taxonomy)\n");
    for mode in AttackMode::ALL {
        let (attack, malicious, tunnel_latency) = match mode {
            AttackMode::PacketEncapsulation => (ScenarioAttack::Wormhole, 2, 0.05),
            AttackMode::OutOfBandChannel => (ScenarioAttack::Wormhole, 2, 0.0),
            AttackMode::HighPowerTransmission => (ScenarioAttack::HighPower(3.0), 1, 0.0),
            AttackMode::PacketRelay => (ScenarioAttack::Relay, 1, 0.0),
            AttackMode::ProtocolDeviation => (ScenarioAttack::Rushing { drop_data: true }, 1, 0.0),
        };
        let mut run = Scenario {
            nodes: 40,
            malicious,
            protected: true,
            seed: 9,
            attack,
            tunnel_latency,
            ..Scenario::default()
        }
        .build();
        run.run_until_secs(300.0);

        println!(
            "== {mode} (min compromised: {}, requires: {}) ==",
            mode.min_compromised_nodes(),
            mode.special_requirement().unwrap_or("nothing special"),
        );
        match mode {
            AttackMode::PacketEncapsulation | AttackMode::OutOfBandChannel => {
                println!(
                    "   colluders detected: {} | wormhole drops: {} | malicious routes: {}",
                    run.all_detected(),
                    run.wormhole_dropped(),
                    run.route_counts().1,
                );
            }
            AttackMode::HighPowerTransmission | AttackMode::PacketRelay => {
                let rejected: u64 = (0..40u32)
                    .map(|i| {
                        run.protocol_node(liteworp::types::NodeId(i))
                            .stats()
                            .frames_rejected
                    })
                    .sum();
                println!(
                    "   long-range frames rejected: {rejected} | fake-link routes: {}",
                    run.fake_link_routes(),
                );
            }
            AttackMode::ProtocolDeviation => {
                println!(
                    "   rusher detected: {} | data it swallowed: {}  <- LITEWORP cannot catch this mode",
                    run.all_detected(),
                    run.sim().metrics().get("rushing_dropped"),
                );
            }
        }
        println!(
            "   paper says LITEWORP handles it: {}\n",
            if mode.handled_by_liteworp() {
                "yes"
            } else {
                "no"
            }
        );
    }
}
