//! Message-level secure neighbor discovery over the simulated radio:
//! nodes boot, exchange HELLO / authenticated replies / list
//! announcements, and end up with first- and second-hop tables matching
//! the deployment geometry — with no oracle preloading.
//!
//! Run with:
//! ```text
//! cargo run --release --example neighbor_discovery
//! ```

use liteworp::types::NodeId as CoreId;
use liteworp_netsim::field::{Field, NodeId as SimId};
use liteworp_netsim::prelude::{RadioConfig, SimDuration, SimTime, Simulator};
use liteworp_netsim::rng::Pcg32;
use liteworp_routing::node::ProtocolNode;
use liteworp_routing::params::{DiscoveryMode, NodeParams};
use liteworp_routing::Packet;

fn main() {
    let mut rng = Pcg32::seed_from_u64(5);
    let nodes = 25;
    let field = Field::connected_with_average_neighbors(nodes, 8.0, 30.0, 200, &mut rng)
        .expect("connected deployment");
    let params = NodeParams {
        total_nodes: nodes as u32,
        // Real message exchange this time, with a 2 s reply-collection
        // window; no data traffic, we only watch discovery.
        discovery: DiscoveryMode::Messages {
            collect: SimDuration::from_secs(2),
        },
        data_interval_mean: None,
        ..NodeParams::default()
    };

    let mut sim = Simulator::<Packet>::new(field, RadioConfig::default(), 5);
    for i in 0..nodes {
        sim.push_node(Box::new(ProtocolNode::new(
            CoreId(i as u32),
            params.clone(),
        )));
    }
    // Stagger deployments so the HELLO floods do not all collide.
    sim.stagger_starts(SimDuration::from_secs(3));
    sim.run_until(SimTime::from_secs_f64(10.0));

    let mut exact = 0usize;
    let mut missing_links = 0usize;
    for i in 0..nodes as u32 {
        let truth: Vec<CoreId> = sim
            .field()
            .in_range_of(SimId(i))
            .into_iter()
            .map(|n| CoreId(n.0))
            .collect();
        let node: &ProtocolNode = sim
            .logic(SimId(i))
            .as_any()
            .downcast_ref()
            .expect("protocol node");
        let table = node.liteworp().expect("protection on").table();
        let discovered: Vec<CoreId> = table.active_neighbors().collect();
        let missed: Vec<&CoreId> = truth.iter().filter(|t| !discovered.contains(t)).collect();
        if missed.is_empty() {
            exact += 1;
        } else {
            missing_links += missed.len();
            println!("n{i}: discovered {discovered:?}, missed {missed:?}");
        }
    }
    println!(
        "\n{exact}/{nodes} nodes discovered their full neighborhood over the radio \
         ({missing_links} links missing, typically HELLO replies lost to collisions)"
    );
    println!(
        "total frames on air: {}, collisions: {}",
        sim.metrics().frames_sent,
        sim.metrics().frames_collided
    );
}
