//! Anatomy of a guard: drives the core `liteworp` library by hand —
//! no simulator — through the exact detection story of Figure 4 in the
//! paper: colluders M1 and M2 tunnel a route request, M2 rebroadcasts it
//! with a forged previous hop, and the guards of that link catch it.
//!
//! Run with:
//! ```text
//! cargo run --example guard_anatomy
//! ```

use liteworp::prelude::*;

fn main() {
    // Topology around the wormhole's far end (Figure 4):
    //
    //      X(1) --- M2(2) --- A(3)
    //        \       |       /
    //         \-- guard(0) -/
    //
    // Node 0 neighbors X, M2 and A, so it guards the link X -> M2.
    let (guard_id, x, m2, a) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    let mut guard = Liteworp::new(Config::default(), KeyStore::new(42, guard_id));
    {
        let t = guard.table_mut();
        t.add_neighbor(x);
        t.add_neighbor(m2);
        t.add_neighbor(a);
        t.set_neighbor_list(x, [guard_id, m2]);
        t.set_neighbor_list(m2, [guard_id, x, a]);
        t.set_neighbor_list(a, [guard_id, m2]);
    }
    println!("guard n0 watches the links around M2 (n2)\n");

    // The admission checks alone already stop the crude variants:
    println!("-- admission checks --");
    println!(
        "packet from a stranger (n9):            {:?}",
        guard.admit(NodeId(9), None)
    );
    println!(
        "M2 claiming its distant colluder (n7):  {:?}",
        guard.admit(m2, Some(NodeId(7)))
    );
    println!(
        "M2 claiming its real neighbor X:        {:?}  <- passes, so the guards must catch it",
        guard.admit(m2, Some(x))
    );

    // M2 rebroadcasts tunneled requests claiming they came from X. X
    // never transmitted them, so the guard's watch buffer has no entry.
    println!("\n-- local monitoring --");
    let fabricated = |seq| PacketObs {
        sender: m2,
        claimed_prev: Some(x),
        link_dst: None,
        sig: PacketSig {
            kind: PacketKind::RouteRequest,
            origin: NodeId(8),
            target: NodeId(9),
            seq,
        },
        terminal: false,
    };
    for seq in 1..=3 {
        let now = Micros(seq * 100_000);
        let effects = guard.observe_packet(&fabricated(seq), now);
        for e in &effects {
            match e {
                Effect::Suspected {
                    suspect,
                    kind,
                    malc,
                } => {
                    println!("seq {seq}: suspected {suspect} of {kind}; MalC = {malc}")
                }
                Effect::SendAlert {
                    suspect, recipient, ..
                } => {
                    println!("seq {seq}: ALERT -> {recipient}: {suspect} is a wormhole endpoint")
                }
                Effect::Isolated { suspect } => {
                    println!("seq {seq}: {suspect} revoked locally")
                }
                Effect::WatchExpired { expired } => {
                    println!("seq {seq}: {expired} watch-buffer entries expired unsatisfied")
                }
            }
        }
    }
    assert!(guard.is_isolated(m2));
    println!(
        "\nMalC crossed C_t = {} after {} fabrications (V_f = {}); M2 is revoked\n",
        guard.config().malc_threshold,
        guard.config().fabrications_to_accuse(),
        guard.config().fabrication_weight,
    );

    // Meanwhile node A collects alerts about M2 from two distinct guards
    // (gamma = 2) and isolates it too.
    println!("-- response & isolation at a neighbor --");
    let mut node_a = Liteworp::new(Config::default(), KeyStore::new(42, a));
    {
        let t = node_a.table_mut();
        t.add_neighbor(guard_id);
        t.add_neighbor(m2);
        t.add_neighbor(x);
        t.set_neighbor_list(m2, [guard_id, x, a]);
    }
    let g0 = KeyStore::new(42, guard_id);
    let gx = KeyStore::new(42, x);
    let mac0 = g0.tag(a, &Liteworp::alert_bytes(guard_id, m2));
    let macx = gx.tag(a, &Liteworp::alert_bytes(x, m2));
    println!(
        "alert from guard n0: {:?}",
        node_a.handle_alert(guard_id, m2, mac0, Micros(1))
    );
    println!(
        "alert from guard n1: {:?}",
        node_a.handle_alert(x, m2, macx, Micros(2))
    );
    assert!(node_a.is_isolated(m2));
    println!("\nnode A now refuses all traffic to and from M2: the wormhole is dead.");
}
