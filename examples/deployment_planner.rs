//! Deployment planner: the Section 5 analysis as a design tool.
//!
//! Given a field size, a communication range, and a target wormhole
//! detection probability, compute how many nodes to deploy, how much
//! memory each needs, and what false-alarm rate to expect — the questions
//! an operator would ask before rolling out a LITEWORP-protected sensor
//! network.
//!
//! Run with:
//! ```text
//! cargo run --example deployment_planner
//! ```

use liteworp::config::Config;
use liteworp_analysis::cost::CostModel;
use liteworp_analysis::detection::{CollisionModel, DetectionModel};
use liteworp_analysis::false_alarm::FalseAlarmModel;
use liteworp_analysis::geometry::GuardGeometry;

fn main() {
    // The deployment we are planning.
    let field_side_m = 200.0;
    let range_m = 30.0;
    let target_detection = 0.99;
    let cfg = Config::default();

    println!("planning a {field_side_m:.0} m x {field_side_m:.0} m field, {range_m:.0} m radios");
    println!(
        "protocol: V_f = {}, V_d = {}, C_t = {} (k = {} fabrications per guard), gamma = {}\n",
        cfg.fabrication_weight,
        cfg.drop_weight,
        cfg.malc_threshold,
        cfg.fabrications_to_accuse(),
        cfg.confidence_index,
    );

    // Detection model with the protocol's own k and a conservative
    // fabrication window.
    let model = DetectionModel {
        window: 7,
        detections_needed: u64::from(cfg.fabrications_to_accuse()),
        confidence_index: cfg.confidence_index as u64,
        collisions: CollisionModel::linear(0.05, 3.0),
    };

    let geo = GuardGeometry::new(range_m);
    let n_b = model
        .required_neighbors(target_detection)
        .expect("target attainable at some density");
    let density = geo.density_from_neighbors(n_b);
    let nodes = (density * field_side_m * field_side_m).ceil() as usize;

    println!("to reach P(detect a wormhole) >= {target_detection}:");
    println!("  average neighbors needed  N_B >= {n_b:.1}");
    println!("  node density              d  = {density:.6} nodes/m^2");
    println!("  nodes to deploy           N  = {nodes}");
    println!(
        "  guards per link (Eq. I)      = {:.2} (model rounds to {})",
        GuardGeometry::paper_guards_from_neighbors(n_b),
        model.guards(n_b)
    );
    println!(
        "  (exact lens geometry puts it at {:.2})",
        geo.exact_guards_from_neighbors(n_b)
    );

    // What does that deployment cost per node?
    let cost = CostModel {
        range: range_m,
        density,
        total_nodes: nodes,
        avg_route_hops: field_side_m / (2.0 * range_m),
        routes_per_time_unit: nodes as f64 / 50.0,
        confidence_index: cfg.confidence_index,
    };
    let delta = cfg.watch_timeout_us as f64 / 1e6;
    println!("\nper-node cost at that density:");
    println!(
        "  neighbor storage          {:.0} B",
        cost.neighbor_storage_bytes()
    );
    println!(
        "  watch buffer              {} entries ({} B)",
        cost.recommended_watch_entries(delta),
        cost.watch_buffer_bytes(delta)
    );
    println!(
        "  alert buffer              {} B per suspect",
        cost.alert_buffer_bytes()
    );
    println!(
        "  discovery traffic         {:.1} messages, once per lifetime",
        cost.discovery_messages_per_node()
    );

    // And the false-alarm exposure.
    let fa = FalseAlarmModel::new(model);
    println!(
        "\nfalse-isolation probability of an honest node at N_B = {n_b:.1}: {:.3e}",
        fa.false_isolation_probability(n_b)
    );
    println!(
        "(planning at the minimum density trades some false-alarm margin; the \n\
         paper's Figure 6(b) parameterization with k = 5 keeps it below 1e-6)"
    );
}
