//! Quickstart: deploy a small sensor network, launch an out-of-band
//! wormhole, and watch LITEWORP detect and isolate the colluders.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use liteworp_bench::Scenario;

fn main() {
    // A 40-node field at the paper's density (8 neighbors on average,
    // 30 m range, 40 kbps channel), with 2 colluding wormhole nodes that
    // activate at t = 50 s.
    let scenario = Scenario {
        nodes: 40,
        malicious: 2,
        protected: true,
        seed: 7,
        ..Scenario::default()
    };
    let mut run = scenario.build();
    println!(
        "deployed {} nodes over a {:.0} m field; colluders: {:?}",
        run.sim().field().len(),
        run.sim().field().side(),
        run.malicious()
    );

    // Let the network run: discovery is preloaded, traffic ramps up, the
    // attack starts at 50 s.
    for checkpoint in [50.0, 100.0, 200.0, 400.0] {
        run.run_until_secs(checkpoint);
        println!(
            "t = {checkpoint:>5.0} s | data sent {:>5} delivered {:>5} | wormhole drops {:>4} | detected: {}",
            run.data_sent(),
            run.data_delivered(),
            run.wormhole_dropped(),
            run.all_detected(),
        );
    }

    // Who blew the whistle, and when?
    println!("\nisolation events (node -> isolated suspect):");
    for iso in run.sim().trace().isolations().take(10) {
        println!("  t = {} {} isolated {}", iso.time, iso.guard, iso.suspect);
    }
    match run.isolation_latency_secs() {
        Some(latency) => println!(
            "\nevery honest neighbor isolated every colluder within {latency:.1} s of attack start"
        ),
        None => println!("\nisolation still incomplete at the end of the run"),
    }

    let (total, bad) = run.route_counts();
    println!(
        "routes established: {total}, through the wormhole: {bad} \
         (the wormhole stops winning routes once isolated)"
    );
}
