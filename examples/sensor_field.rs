//! A Figure-8-style head-to-head: the same 100-node sensor field, the
//! same wormhole, with and without LITEWORP. Prints the cumulative
//! wormhole-drop timeline that the paper plots.
//!
//! Run with:
//! ```text
//! cargo run --release --example sensor_field
//! ```

use liteworp_bench::Scenario;

fn main() {
    let make = |protected| Scenario {
        nodes: 100,
        malicious: 2,
        protected,
        seed: 11,
        ..Scenario::default()
    };
    let mut baseline = make(false).build();
    let mut protected = make(true).build();

    println!("100-node field, 2 colluders, attack starts at t = 50 s\n");
    println!(
        "{:>8}  {:>18}  {:>18}",
        "t [s]", "baseline drops", "LITEWORP drops"
    );
    let mut t = 0.0;
    while t < 1000.0 {
        t += 100.0;
        baseline.run_until_secs(t);
        protected.run_until_secs(t);
        println!(
            "{:>8.0}  {:>18}  {:>18}",
            t,
            baseline.wormhole_dropped(),
            protected.wormhole_dropped()
        );
    }

    println!();
    println!(
        "baseline:  {} routes, {} through the wormhole ({} packets swallowed)",
        baseline.route_counts().0,
        baseline.route_counts().1,
        baseline.wormhole_dropped()
    );
    println!(
        "LITEWORP:  {} routes, {} through the wormhole ({} packets swallowed)",
        protected.route_counts().0,
        protected.route_counts().1,
        protected.wormhole_dropped()
    );
    if let Some(latency) = protected.isolation_latency_secs() {
        println!("LITEWORP fully isolated the wormhole {latency:.1} s after the attack began");
    }
    println!(
        "\nnote how the protected curve flattens shortly after isolation, with a\n\
         short tail while cached routes through the wormhole age out (TOut_Route = 50 s)."
    );
}
