//! Workspace root package: hosts runnable examples and integration tests.

#![forbid(unsafe_code)]
