//! Workspace root package: hosts runnable examples and integration tests.
